module Regression = P2p_stats.Regression

type config = {
  window : int;
  pin_threshold : int;
  pin_fraction : float;
  min_one_club : int;
  min_slope : float;
  min_t_stat : float;
}

let default =
  {
    window = 24;
    pin_threshold = 2;
    pin_fraction = 0.8;
    min_one_club = 8;
    min_slope = 0.0;
    min_t_stat = 4.0;
  }

type alert = {
  at : float;
  one_club : int;
  rarest_piece : int;
  rarest_count : int;
  slope : float;
  t_stat : float;
}

type t = {
  config : config;
  on_alert : alert -> unit;
  times : float array;
  clubs : float array;
  rares : int array;
  mutable seen : int;
  mutable alerts_rev : alert list;
  mutable episodes_rev : (float * float option) list;
  mutable in_episode : bool;
}

let create ?(config = default) ?(on_alert = fun _ -> ()) () =
  if config.window < 4 then invalid_arg "Monitor.create: window < 4";
  if not (config.pin_fraction >= 0.0 && config.pin_fraction <= 1.0) then
    invalid_arg "Monitor.create: pin_fraction outside [0, 1]";
  if config.pin_threshold < 0 then invalid_arg "Monitor.create: pin_threshold < 0";
  if config.min_one_club < 0 then invalid_arg "Monitor.create: min_one_club < 0";
  {
    config;
    on_alert;
    times = Array.make config.window 0.0;
    clubs = Array.make config.window 0.0;
    rares = Array.make config.window 0;
    seen = 0;
    alerts_rev = [];
    episodes_rev = [];
    in_episode = false;
  }

let samples_seen t = t.seen
let alerts t = List.rev t.alerts_rev
let episodes t = List.rev t.episodes_rev
let alerting t = t.in_episode

(* The syndrome test over the current window: scarcity pinned for most
   of it AND the one-club drifting up with statistical significance.
   O(window) arithmetic, once per probe sample. *)
let condition t =
  let c = t.config in
  let w = c.window in
  let pinned = ref 0 in
  for i = 0 to w - 1 do
    if t.rares.(i) <= c.pin_threshold then incr pinned
  done;
  if float_of_int !pinned < c.pin_fraction *. float_of_int w then None
  else begin
    let points = Array.init w (fun i -> (t.times.(i), t.clubs.(i))) in
    (* sort by time so the window reads oldest-first regardless of the
       ring phase; OLS itself is order-independent but degenerate-x
       detection and readers are simpler on sorted points *)
    Array.sort (fun (a, _) (b, _) -> Float.compare a b) points;
    match Regression.fit points with
    | exception Invalid_argument _ -> None (* degenerate window (repeated times) *)
    | fit ->
        let t_stat = Regression.slope_t_statistic fit in
        if fit.Regression.slope > c.min_slope && t_stat >= c.min_t_stat then
          Some (fit.Regression.slope, t_stat)
        else None
  end

let observe t ~time ~one_club ~rarest_piece ~rarest_count =
  let c = t.config in
  let slot = t.seen mod c.window in
  t.times.(slot) <- time;
  t.clubs.(slot) <- float_of_int one_club;
  t.rares.(slot) <- rarest_count;
  t.seen <- t.seen + 1;
  if t.seen >= c.window && one_club >= c.min_one_club then (
    match condition t with
    | Some (slope, t_stat) ->
        if not t.in_episode then begin
          t.in_episode <- true;
          t.episodes_rev <- (time, None) :: t.episodes_rev;
          let alert = { at = time; one_club; rarest_piece; rarest_count; slope; t_stat } in
          t.alerts_rev <- alert :: t.alerts_rev;
          t.on_alert alert
        end
    | None ->
        if t.in_episode then begin
          t.in_episode <- false;
          match t.episodes_rev with
          | (entered, None) :: rest -> t.episodes_rev <- (entered, Some time) :: rest
          | _ -> ()
        end)
  else if t.in_episode && one_club < c.min_one_club then begin
    t.in_episode <- false;
    match t.episodes_rev with
    | (entered, None) :: rest -> t.episodes_rev <- (entered, Some time) :: rest
    | _ -> ()
  end

let alert_json a =
  Json.Obj
    [
      ("alert", Json.String "missing_piece_syndrome");
      ("t", Json.Float a.at);
      ("one_club", Json.Int a.one_club);
      (* 1-based piece numbers on the wire, matching the tracer and CLI *)
      ("rarest_piece", Json.Int (a.rarest_piece + 1));
      ("rarest_count", Json.Int a.rarest_count);
      ("slope", Json.Float a.slope);
      ("t_stat", Json.Float a.t_stat);
    ]

let episode_json (entered, exited) =
  Json.Obj
    [
      ("entered", Json.Float entered);
      ("exited", match exited with Some x -> Json.Float x | None -> Json.Null);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "p2p-monitor");
      ("version", Json.Int 1);
      ("samples", Json.Int t.seen);
      ("alerts", Json.List (List.map alert_json (alerts t)));
      ("episodes", Json.List (List.map episode_json (episodes t)));
    ]

let pp_alert fmt a =
  Format.fprintf fmt
    "missing_piece_syndrome at t=%.6g: piece %d down to %d copies, one-club %d drifting %+.4g/t (t-stat %.2f)"
    a.at (a.rarest_piece + 1) a.rarest_count a.one_club a.slope a.t_stat
