module Timeavg = P2p_stats.Timeavg

type t = {
  k : int;
  mutable rev_samples : Probe.sample list;
  mutable count : int;
  avg_n : Timeavg.t;
  avg_seeds : Timeavg.t;
  avg_club : Timeavg.t;
  avg_rarest : Timeavg.t;
  avg_pieces : Timeavg.t array;
}

let create ~k =
  if k < 1 then invalid_arg "Series.create: k < 1";
  {
    k;
    rev_samples = [];
    count = 0;
    avg_n = Timeavg.create ();
    avg_seeds = Timeavg.create ();
    avg_club = Timeavg.create ();
    avg_rarest = Timeavg.create ();
    avg_pieces = Array.init k (fun _ -> Timeavg.create ());
  }

let k t = t.k

let record t (s : Probe.sample) =
  if Array.length s.piece_counts <> t.k then
    invalid_arg "Series.record: sample k does not match series k";
  Timeavg.observe t.avg_n ~time:s.time ~value:(float_of_int s.n);
  Timeavg.observe t.avg_seeds ~time:s.time ~value:(float_of_int s.seeds);
  Timeavg.observe t.avg_club ~time:s.time ~value:(float_of_int s.one_club);
  Timeavg.observe t.avg_rarest ~time:s.time ~value:(float_of_int s.rarest_count);
  Array.iteri
    (fun piece avg -> Timeavg.observe avg ~time:s.time ~value:(float_of_int s.piece_counts.(piece)))
    t.avg_pieces;
  t.rev_samples <- s :: t.rev_samples;
  t.count <- t.count + 1

let close t ~time =
  Timeavg.close t.avg_n ~time;
  Timeavg.close t.avg_seeds ~time;
  Timeavg.close t.avg_club ~time;
  Timeavg.close t.avg_rarest ~time;
  Array.iter (fun avg -> Timeavg.close avg ~time) t.avg_pieces

let count t = t.count
let samples t = Array.of_list (List.rev t.rev_samples)

let series_of field t =
  Array.of_list (List.rev_map (fun (s : Probe.sample) -> (s.time, field s)) t.rev_samples)

let one_club_series = series_of (fun s -> s.one_club)
let population_series = series_of (fun s -> s.n)

let avg_n t = Timeavg.average t.avg_n
let avg_seeds t = Timeavg.average t.avg_seeds
let avg_one_club t = Timeavg.average t.avg_club
let avg_rarest_count t = Timeavg.average t.avg_rarest

let avg_piece t piece =
  if piece < 0 || piece >= t.k then invalid_arg "Series.avg_piece: piece out of range";
  Timeavg.average t.avg_pieces.(piece)

(* ---- persistence ---- *)

let schema = "p2p-swarm-probe"
let version = 1

let header t =
  Json.Obj [ ("schema", Json.String schema); ("version", Json.Int version); ("k", Json.Int t.k) ]

let sample_json (s : Probe.sample) =
  Json.Obj
    [
      ("t", Json.Float s.time);
      ("n", Json.Int s.n);
      ("seeds", Json.Int s.seeds);
      ("club", Json.Int s.one_club);
      ("rarest", Json.Int (s.rarest_piece + 1));
      ("rarest_n", Json.Int s.rarest_count);
      ("pieces", Json.List (Array.to_list (Array.map (fun c -> Json.Int c) s.piece_counts)));
    ]

let write t oc =
  Json.to_channel oc (header t);
  output_char oc '\n';
  List.iter
    (fun s ->
      Json.to_channel oc (sample_json s);
      output_char oc '\n')
    (List.rev t.rev_samples)

let sample_of_json ~k json =
  let int_field name =
    match Json.member name json with
    | Some v -> (
        match Json.to_int_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "field %S is not an integer" name))
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* time =
    match Option.bind (Json.member "t" json) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error "missing or bad field \"t\""
  in
  let* n = int_field "n" in
  let* seeds = int_field "seeds" in
  let* one_club = int_field "club" in
  let* rarest = int_field "rarest" in
  let* rarest_count = int_field "rarest_n" in
  let* pieces =
    match Option.bind (Json.member "pieces" json) Json.to_list_opt with
    | Some items ->
        let counts = List.filter_map Json.to_int_opt items in
        if List.length counts = List.length items && List.length counts = k then
          Ok (Array.of_list counts)
        else Error "field \"pieces\" is not an int array of length k"
    | None -> Error "missing field \"pieces\""
  in
  if rarest < 1 || rarest > k then Error "field \"rarest\" out of [1, k]"
  else
    Ok
      {
        Probe.time;
        n;
        seeds;
        one_club;
        rarest_piece = rarest - 1;
        rarest_count;
        piece_counts = pieces;
      }

let read ic =
  let next_line () = try Some (input_line ic) with End_of_file -> None in
  match next_line () with
  | None -> Error "empty probe file"
  | Some first -> (
      match Json.of_string first with
      | Error msg -> Error ("bad header line: " ^ msg)
      | Ok header ->
          if Option.bind (Json.member "schema" header) Json.to_string_opt <> Some schema then
            Error (Printf.sprintf "not a %s file (bad or missing schema)" schema)
          else begin
            match Option.bind (Json.member "k" header) Json.to_int_opt with
            | None -> Error "header has no \"k\""
            | Some k when k < 1 -> Error "header \"k\" < 1"
            | Some k -> (
                let t = create ~k in
                let rec loop lineno =
                  match next_line () with
                  | None -> Ok ()
                  | Some line when String.trim line = "" -> loop (lineno + 1)
                  | Some line -> (
                      match Json.of_string line with
                      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
                      | Ok json -> (
                          match sample_of_json ~k json with
                          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg)
                          | Ok sample ->
                              record t sample;
                              loop (lineno + 1)))
                in
                match loop 2 with
                | Error _ as e -> e
                | Ok () ->
                    (match t.rev_samples with
                    | last :: _ -> close t ~time:last.Probe.time
                    | [] -> ());
                    Ok t)
          end)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
