(* OCaml 5.1's [Unix] does not expose [clock_gettime]; the bechamel
   benchmarking suite (already a repo dependency) ships a tiny C stub
   for CLOCK_MONOTONIC as [bechamel.monotonic_clock].  We funnel every
   instrument through this one indirection so a future stdlib clock is
   a one-line swap. *)

let now_ns () = Monotonic_clock.now ()
let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
