(** Named counters, gauges, and wall-clock timers.

    The overhead contract: an instrument obtained from {!disabled} is a
    dead cell — updating it is a single branch on an immutable field, no
    allocation, no hashing, no clock read.  Simulation code can therefore
    update instruments unconditionally in hot loops; with telemetry off
    the cost is negligible and (because instruments never touch the
    simulation RNG or any float statistic) the simulated trajectory is
    bit-identical either way.  A golden test pins that guarantee.

    {b Domain contract (pinned by a multi-domain test).}  A registry is
    a {e single-domain} object: registration and updates are unlocked,
    so sharing one live registry across domains races.  Parallel work
    gives each domain its own registry and the owner combines them
    after join with {!merge} — counters and timer totals add, gauges
    keep the maximum, so the merged registry is identical in any join
    order.  Timers read the monotonic clock, never wall time. *)

type t
(** A registry of named instruments. *)

val disabled : t
(** The shared no-op registry: every instrument it returns is dead. *)

val create : unit -> t
val enabled : t -> bool

type counter

val counter : t -> string -> counter
(** Registers (or re-fetches) the named counter.
    @raise Invalid_argument if the name is registered as another kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

type timer

val timer : t -> string -> timer

val time : timer -> (unit -> 'a) -> 'a
(** Runs the thunk, accumulating its wall-clock duration; when the timer
    is dead the thunk runs with no clock read. *)

val timer_total_s : timer -> float
val timer_count : timer -> int

val merge : into:t -> t -> unit
(** Fold [src] into [into]: counters and timers add, gauges keep the
    larger value, unknown names register on demand.  A dead registry on
    either side makes this a no-op.
    @raise Invalid_argument if a name is registered as different kinds
    in the two registries. *)

val to_json : t -> Json.t
(** [Obj] keyed by instrument name (sorted): counters as [Int], gauges as
    [Float], timers as [{"total_s": ..., "count": ...}]. *)
