(** Multicore Monte-Carlo replication runner.

    Runs [R] independent replications of a simulation thunk across [D]
    domains (OCaml 5 [Domain]s) and folds the per-replication outputs
    into aggregate statistics.  The three design rules:

    {ol
    {- {b Deterministic seeding.}  Replication [i] draws all of its
       randomness from [Rng.of_seed_pair ~master:master_seed ~stream:i].
       No RNG state is shared between replications, so the output of
       replication [i] depends only on [(master_seed, i)] — never on
       which domain ran it or in what order.}
    {- {b Deterministic aggregation.}  Work is dealt in fixed-size
       chunks of consecutive replication indices; each chunk
       accumulates locally and the per-chunk accumulators are merged
       {e in chunk order} after all domains join.  The chunk layout
       depends only on [(replications, chunk)], so merged aggregates
       are bit-identical for any [jobs] count — and across back-to-back
       runs.  (A test asserts both.)}
    {- {b Lock-free scheduling.}  Domains claim chunks from a single
       atomic counter; no locks, no channels, no shared mutable
       simulation state.}}

    {b Failure isolation.}  A replication that raises no longer has to
    poison the sweep: the {!on_error} policy decides whether the first
    failure aborts everything (the default, as before), is skipped, or
    is retried on a fresh deterministic stream.  Skipped and
    retried-then-failed replications are recorded as {!failure} values —
    index, exception, and the backtrace captured at the raise — in
    {!timing.failures}.  Because the policy is applied inside the chunk
    walk, the surviving replications' merged aggregates remain
    bit-identical across any [jobs] count.

    The thunk must be self-contained: it may only touch its [rng]
    argument and its own allocations.  All simulators in this
    repository satisfy this (they draw randomness exclusively through
    the [rng] handed to [run]). *)

module Rng = P2p_prng.Rng
module Welford = P2p_stats.Welford
module Histogram = P2p_stats.Histogram

type failure = {
  index : int;  (** the replication that raised *)
  error : exn;
  backtrace : Printexc.raw_backtrace;  (** captured at the raise site *)
}

type on_error =
  | Abort  (** first failure re-raised (with its backtrace) after all domains join *)
  | Skip  (** failed replications are dropped and recorded in [timing.failures] *)
  | Retry of int
      (** retry up to [n] more times, each attempt on a fresh
          deterministic stream ({!derive_retry_rng}); a replication still
          failing after [n] retries is skipped and recorded *)

exception Rep_timeout
(** A replication attempt outran its [rep_timeout_s] watchdog.  Raised
    cooperatively by thunks that poll {!deadline_exceeded}, and recorded
    by the runner itself when an attempt returns after its deadline (the
    late value is discarded).  Handled like any other failure by the
    {!on_error} policy: a retried attempt starts a fresh watchdog. *)

val deadline_exceeded : unit -> bool
(** Whether the watchdog of the replication attempt currently running on
    this domain has expired ([false] when no [rep_timeout_s] is active).
    OCaml cannot preempt a domain, so enforcement is cooperative: long
    thunks poll this (the simulators accept it as an [until] predicate)
    and bail out, typically by raising {!Rep_timeout}.  A thunk that
    never polls still gets its late result discarded post hoc. *)

type timing = {
  wall_s : float;  (** wall-clock seconds for the whole sweep *)
  jobs : int;  (** domains actually used (including the caller's) *)
  chunks : int;  (** number of work-queue chunks *)
  busy_s : float array;  (** per-domain busy seconds, length [jobs] *)
  failures : failure list;  (** skipped replications, sorted by index *)
  over_budget : int;  (** replications that exceeded [budget_s] *)
  interrupted : bool;  (** a SIGINT cut the sweep short (see [handle_sigint]) *)
}

val utilisation : timing -> float
(** Mean fraction of the wall-clock each domain spent in replication
    work; 1.0 = perfect scaling, [nan] when [wall_s = 0].

    Caveat (measured for DESIGN §17): busy time is wall-clock around
    each chunk, so time a domain spends {e descheduled} mid-chunk still
    counts as busy.  When [jobs] exceeds the physical core count the
    figure stays near 1 while real speedup is ≤ 1; {!pp_timing} appends
    an "oversubscribed" flag in that case.  The mild falloff that {e is}
    visible under oversubscription (≈ 91% at 4 jobs on 1 core) is
    chunk-retirement bookkeeping and domain spawn/join landing between
    [tick]s, not lost simulation work. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val derive_rng : master_seed:int -> index:int -> Rng.t
(** The runner's seed-derivation scheme, exposed so tests and
    documentation can name it: equal to
    [Rng.of_seed_pair ~master:master_seed ~stream:index]. *)

val derive_retry_rng : master_seed:int -> index:int -> attempt:int -> Rng.t
(** Stream of retry [attempt] of a replication: [attempt = 0] is
    {!derive_rng}; [attempt >= 1] re-keys the family from one output of
    the attempt-0 stream, so every attempt is deterministic in
    [(master_seed, index, attempt)] and independent of scheduling.
    @raise Invalid_argument if [attempt < 0]. *)

(** {1 Sweeps}

    Common optional arguments:

    - [jobs] (default {!default_jobs}, clamped to the number of chunks)
      — domains to use; never affects results.
    - [chunk] (default [max 4 (min 64 (replications / 32))] — a function
      of [replications] only, never of [jobs]) — consecutive replications
      per queue pop; fixes the (deterministic) float merge grouping for
      the folded paths, so hold it constant when comparing runs.
    - [on_error] (default [Abort]) — the failure policy above.
    - [budget_s] — per-replication wall-clock budget: a replication
      running longer is still kept (OCaml cannot safely preempt it) but
      is counted in [timing.over_budget] so the caller knows the sweep
      outran its budget instead of silently trusting it.
    - [rep_timeout_s] — per-replication wall-clock watchdog: an attempt
      running longer than this is a {e failure} ({!Rep_timeout}), not a
      kept-but-counted result.  Thunks that poll {!deadline_exceeded}
      stop early; ones that do not still have their late value discarded
      once they return.  The failure then follows [on_error] — retried
      attempts run on fresh deterministic streams with a fresh watchdog.
      Wall-clock timeouts are inherently scheduling-dependent; for
      results that must stay bit-identical across [jobs], pick a timeout
      with a wide margin against the slowest replication (the
      deterministic-seeding contract itself is unaffected: surviving
      replications keep their streams).
      @raise Invalid_argument unless finite positive.
    - [handle_sigint] (default [false]) — install a SIGINT handler for
      the duration of the sweep that stops domains from claiming further
      chunks, joins them, restores the previous handler, and returns the
      completed chunks with [timing.interrupted = true].  Merged results
      under interruption reflect whichever chunks completed, so they are
      {e not} jobs-independent — check the flag before comparing.
    - [progress] (default {!P2p_obs.Progress.silent}) — a live progress
      meter ticked once per finished replication, from whichever domain
      finished it (the meter is thread-safe).  Thunks that want the
      events/s figure call [Progress.add_events] themselves.  Purely
      observational: it never affects scheduling, seeding, or results.
    - [hists] (default absent) — a {!P2p_obs.Hist.group} into which the
      runner records one wall-clock replication-duration histogram per
      domain, named [runner/replication_s/domain<d>].  This is the
      utilisation-imbalance observable: a domain whose histogram mass
      sits far above the others' is the straggler.  Each domain writes
      only its own histogram (no cross-domain mutation); because chunk
      claiming is racy, the per-domain split describes {e this}
      execution, not the seeding contract.  Purely observational. *)

val run_map :
  ?jobs:int ->
  ?chunk:int ->
  ?on_error:on_error ->
  ?budget_s:float ->
  ?rep_timeout_s:float ->
  ?handle_sigint:bool ->
  ?progress:P2p_obs.Progress.t ->
  ?hists:P2p_obs.Hist.group ->
  master_seed:int ->
  replications:int ->
  (rng:Rng.t -> index:int -> 'a) ->
  'a option array * timing
(** [run_map ~master_seed ~replications f] evaluates
    [f ~rng:(derive_rng ~master_seed ~index:i) ~index:i] for
    [i = 0 .. replications-1] and returns the results indexed by
    replication.  A slot is [None] only if that replication was skipped
    under [Skip]/[Retry] (it is then named in [timing.failures]) or
    never ran because of an interrupt — under the default [Abort] policy
    an uninterrupted sweep returns all [Some].
    @raise Invalid_argument if [replications < 0], [jobs < 1],
    [chunk < 1] or [Retry n] with [n < 1].  Under [Abort], the first
    exception raised by [f] is re-raised in the caller after all domains
    join, with the original backtrace preserved. *)

val run_fold :
  ?jobs:int ->
  ?chunk:int ->
  ?on_error:on_error ->
  ?budget_s:float ->
  ?rep_timeout_s:float ->
  ?handle_sigint:bool ->
  ?progress:P2p_obs.Progress.t ->
  ?hists:P2p_obs.Hist.group ->
  master_seed:int ->
  replications:int ->
  init:(unit -> 'acc) ->
  add:('acc -> 'a -> unit) ->
  merge:('acc -> 'acc -> 'acc) ->
  (rng:Rng.t -> index:int -> 'a) ->
  'acc * timing
(** Streaming version of {!run_map}: each chunk folds its replications
    into a fresh [init ()] accumulator with [add] (in index order), and
    the chunk accumulators are combined left-to-right in chunk order
    with [merge] (starting from [init ()], so [replications = 0] just
    returns an empty accumulator).  Per-replication outputs are never
    retained, so sweeps with large [R] run in constant memory.  Skipped
    replications are simply never [add]ed, which keeps the surviving
    merge bit-identical across [jobs]. *)

(** {1 Canned aggregation: named metrics + pooled histogram} *)

type hist_spec = { lo : float; hi : float; bins : int }

type rep = {
  values : float array;  (** one entry per metric, in [metrics] order *)
  observations : float array;  (** pooled into the histogram when [?hist] is given *)
  flagged : bool;
      (** the replication self-reports as degraded (e.g. the simulator's
          [max_events] budget truncated it); counted in [summary.partial] *)
}

val rep : ?flagged:bool -> ?obs:float array -> float array -> rep
(** Thunk-side constructor: [rep values], [rep ~obs values],
    [rep ~flagged:stats.truncated values]. *)

type summary = {
  stats : (string * Welford.t) list;
      (** one merged accumulator per metric, in [metrics] order *)
  hist : Histogram.t option;
      (** pooled over every observation the thunk emitted *)
  partial : int;
      (** replications whose contribution is suspect: thunk-[flagged]
          ones plus [timing.over_budget].  [0] means every aggregated
          replication ran to completion within budget. *)
  timing : timing;
}

val run_summary :
  ?jobs:int ->
  ?chunk:int ->
  ?on_error:on_error ->
  ?budget_s:float ->
  ?rep_timeout_s:float ->
  ?handle_sigint:bool ->
  ?progress:P2p_obs.Progress.t ->
  ?hists:P2p_obs.Hist.group ->
  ?hist:hist_spec ->
  metrics:string list ->
  master_seed:int ->
  replications:int ->
  (rng:Rng.t -> index:int -> rep) ->
  summary
(** The common experiment shape.  The thunk returns a {!rep}: [values]
    must have one entry per name in [metrics] (checked), [observations]
    may have any length and is pooled into the histogram when [?hist] is
    given (ignored otherwise), and [flagged] marks the replication as
    degraded.  Welford accumulators are merged with Chan's parallel
    update rather than by concatenating samples: a merged accumulator is
    O(metrics) memory independent of [R], loses no precision (the
    algebra test pins means and variances to the single-pass values),
    and keeps exact min/max/count.
    @raise Invalid_argument if a metric array has the wrong length. *)

val pp_timing : Format.formatter -> timing -> unit
(** ["wall 1.23s, 4 domains, 87% busy"], plus failure / budget /
    interrupt counts when present. *)

val pp_failure : Format.formatter -> failure -> unit
(** ["replication 7: Failure(...)"] followed by the captured backtrace
    when one is available. *)
