(** Multicore Monte-Carlo replication runner.

    Runs [R] independent replications of a simulation thunk across [D]
    domains (OCaml 5 [Domain]s) and folds the per-replication outputs
    into aggregate statistics.  The three design rules:

    {ol
    {- {b Deterministic seeding.}  Replication [i] draws all of its
       randomness from [Rng.of_seed_pair ~master:master_seed ~stream:i].
       No RNG state is shared between replications, so the output of
       replication [i] depends only on [(master_seed, i)] — never on
       which domain ran it or in what order.}
    {- {b Deterministic aggregation.}  Work is dealt in fixed-size
       chunks of consecutive replication indices; each chunk
       accumulates locally and the per-chunk accumulators are merged
       {e in chunk order} after all domains join.  The chunk layout
       depends only on [(replications, chunk)], so merged aggregates
       are bit-identical for any [jobs] count — and across back-to-back
       runs.  (A test asserts both.)}
    {- {b Lock-free scheduling.}  Domains claim chunks from a single
       atomic counter; no locks, no channels, no shared mutable
       simulation state.}}

    The thunk must be self-contained: it may only touch its [rng]
    argument and its own allocations.  All simulators in this
    repository satisfy this (they draw randomness exclusively through
    the [rng] handed to [run]). *)

module Rng = P2p_prng.Rng
module Welford = P2p_stats.Welford
module Histogram = P2p_stats.Histogram

type timing = {
  wall_s : float;  (** wall-clock seconds for the whole sweep *)
  jobs : int;  (** domains actually used (including the caller's) *)
  chunks : int;  (** number of work-queue chunks *)
  busy_s : float array;  (** per-domain busy seconds, length [jobs] *)
}

val utilisation : timing -> float
(** Mean fraction of the wall-clock each domain spent in replication
    work; 1.0 = perfect scaling, [nan] when [wall_s = 0]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val derive_rng : master_seed:int -> index:int -> Rng.t
(** The runner's seed-derivation scheme, exposed so tests and
    documentation can name it: equal to
    [Rng.of_seed_pair ~master:master_seed ~stream:index]. *)

val run_map :
  ?jobs:int ->
  ?chunk:int ->
  master_seed:int ->
  replications:int ->
  (rng:Rng.t -> index:int -> 'a) ->
  'a array * timing
(** [run_map ~master_seed ~replications f] evaluates
    [f ~rng:(derive_rng ~master_seed ~index:i) ~index:i] for
    [i = 0 .. replications-1] and returns the results indexed by
    replication.  [jobs] defaults to {!default_jobs} (clamped to the
    number of chunks); [chunk] (default 4) is the number of consecutive
    replications claimed per queue pop.  Neither affects [run_map]
    results at all; for {!run_fold} and {!run_summary} the chunk size
    fixes the (deterministic) merge grouping, so results there are
    independent of [jobs] but may differ in floating-point rounding
    across different [chunk] values — hold [chunk] at its default when
    comparing runs.
    @raise Invalid_argument if [replications < 0], [jobs < 1] or
    [chunk < 1].  Exceptions raised by [f] are re-raised in the
    caller after all domains join. *)

val run_fold :
  ?jobs:int ->
  ?chunk:int ->
  master_seed:int ->
  replications:int ->
  init:(unit -> 'acc) ->
  add:('acc -> 'a -> unit) ->
  merge:('acc -> 'acc -> 'acc) ->
  (rng:Rng.t -> index:int -> 'a) ->
  'acc * timing
(** Streaming version of {!run_map}: each chunk folds its replications
    into a fresh [init ()] accumulator with [add] (in index order), and
    the chunk accumulators are combined left-to-right in chunk order
    with [merge] (starting from [init ()], so [replications = 0] just
    returns an empty accumulator).  Per-replication outputs are never
    retained, so sweeps with large [R] run in constant memory. *)

(** {1 Canned aggregation: named metrics + pooled histogram} *)

type hist_spec = { lo : float; hi : float; bins : int }

type summary = {
  stats : (string * Welford.t) list;
      (** one merged accumulator per metric, in [metrics] order *)
  hist : Histogram.t option;
      (** pooled over every observation the thunk emitted *)
  timing : timing;
}

val run_summary :
  ?jobs:int ->
  ?chunk:int ->
  ?hist:hist_spec ->
  metrics:string list ->
  master_seed:int ->
  replications:int ->
  (rng:Rng.t -> index:int -> float array * float array) ->
  summary
(** The common experiment shape.  The thunk returns
    [(metric values, histogram observations)]: the first array must
    have one entry per name in [metrics] (checked), the second may have
    any length and is pooled into the histogram when [?hist] is given
    (it is ignored otherwise — return [[||]] if you have none).
    Welford accumulators are merged with Chan's parallel update rather
    than by concatenating samples: a merged accumulator is O(metrics)
    memory independent of [R], loses no precision (the algebra test
    pins means and variances to the single-pass values), and keeps
    exact min/max/count.
    @raise Invalid_argument if a metric array has the wrong length. *)

val pp_timing : Format.formatter -> timing -> unit
(** ["wall 1.23s, 4 domains, 87% busy"]. *)
