module Rng = P2p_prng.Rng
module Welford = P2p_stats.Welford
module Histogram = P2p_stats.Histogram
module Progress = P2p_obs.Progress
module Hist = P2p_obs.Hist
module Clock = P2p_obs.Clock

type failure = { index : int; error : exn; backtrace : Printexc.raw_backtrace }

type on_error = Abort | Skip | Retry of int

exception Rep_timeout

(* The watchdog deadline of the replication attempt currently running on
   this domain ([infinity] outside one).  Cooperative: thunks poll
   [deadline_exceeded] (the simulators wire it into their [until]
   predicate) to stop early; the runner additionally enforces it post
   hoc, discarding the value of an attempt that finished late.  OCaml
   cannot safely preempt a domain, so a thunk that neither polls nor
   returns runs to completion — but its result is still recorded as a
   {!Rep_timeout} failure and handed to the [on_error] policy. *)
let deadline_key : float Domain.DLS.key = Domain.DLS.new_key (fun () -> infinity)

let deadline_exceeded () = Clock.now_s () > Domain.DLS.get deadline_key

type timing = {
  wall_s : float;
  jobs : int;
  chunks : int;
  busy_s : float array;
  failures : failure list;
  over_budget : int;
  interrupted : bool;
}

let utilisation t =
  if t.wall_s <= 0.0 then nan
  else
    Array.fold_left ( +. ) 0.0 t.busy_s
    /. (t.wall_s *. float_of_int (Array.length t.busy_s))

let pp_timing fmt t =
  Format.fprintf fmt "wall %.2fs, %d domain%s, %.0f%% busy" t.wall_s t.jobs
    (if t.jobs = 1 then "" else "s")
    (100.0 *. utilisation t);
  (* Busy time is wall-clock around each chunk, so a descheduled domain
     still counts as busy: on a box with fewer cores than domains the
     utilisation figure stays high while real speedup is ≤ 1.  Flag it
     rather than silently reporting a flattering number (DESIGN §17). *)
  if t.jobs > Domain.recommended_domain_count () then
    Format.fprintf fmt " (oversubscribed: %d core%s)"
      (Domain.recommended_domain_count ())
      (if Domain.recommended_domain_count () = 1 then "" else "s");
  if t.failures <> [] then
    Format.fprintf fmt ", %d replication%s failed" (List.length t.failures)
      (if List.length t.failures = 1 then "" else "s");
  if t.over_budget > 0 then Format.fprintf fmt ", %d over budget" t.over_budget;
  if t.interrupted then Format.fprintf fmt ", INTERRUPTED"

let pp_failure fmt f =
  Format.fprintf fmt "replication %d: %s" f.index (Printexc.to_string f.error);
  let bt = Printexc.raw_backtrace_to_string f.backtrace in
  if bt <> "" then Format.fprintf fmt "@,%s" (String.trim bt)

let default_jobs () = Domain.recommended_domain_count ()

let derive_rng ~master_seed ~index = Rng.of_seed_pair ~master:master_seed ~stream:index

(* Retry [attempt] of replication [index] re-keys the stream family from
   one output of the attempt-0 stream, so each attempt sees a fresh
   deterministic stream: a pure function of (master_seed, index, attempt),
   never of which domain ran it or how many times other replications
   retried. *)
let derive_retry_rng ~master_seed ~index ~attempt =
  if attempt < 0 then invalid_arg "Runner: retry attempt < 0";
  if attempt = 0 then derive_rng ~master_seed ~index
  else
    let base = derive_rng ~master_seed ~index in
    Rng.of_seed_pair ~master:(Int64.to_int (Rng.bits64 base)) ~stream:attempt

(* The scheduling core shared by run_map and run_fold.

   [work c] processes chunk [c] (a contiguous index range computed by the
   caller) and must only write to slots owned by that chunk.  Chunks are
   claimed from an atomic counter, so the assignment of chunks to domains
   is racy — but since every per-chunk result lands in a slot keyed by the
   chunk index, the *outputs* are scheduling-independent.

   An exception escaping [work] (an [Abort]ing replication, or a bug in an
   accumulator) is captured once, with its backtrace, and re-raised in the
   caller after every domain joins.  With [handle_sigint], a SIGINT stops
   the domains from claiming further chunks instead of killing the
   process: completed chunks are kept and [interrupted] is reported so the
   caller can flush partial results. *)
(* Replication thunks allocate; OCaml 5 minor collections are
   stop-the-world across every running domain, so domains with the
   default (small) minor heap spend the sweep synchronising instead of
   simulating.  Enlarging the minor heap per domain stretches the time
   between barriers.  2^21 words (16 MB) won an empirical sweep over
   2^18..2^23 on an allocation-bound two/four-domain workload: below it
   the barriers dominate, above it the minor heap outgrows cache and
   every allocation misses.  Applied only in multi-domain sweeps; the
   caller's setting is restored once the domains join. *)
let tune_gc () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 21 }

let drive ~jobs ~nchunks ~handle_sigint ~work =
  let next = Atomic.make 0 in
  (* One 64-byte cache line (8 unboxed floats) per domain: the busy
     counters are written on every chunk retirement, and packing them
     adjacently would false-share those writes across domains. *)
  let stride = 8 in
  let busy = Array.make (jobs * stride) 0.0 in
  let failure = Atomic.make None in
  let interrupted = Atomic.make false in
  let stop () = Atomic.get failure <> None || Atomic.get interrupted in
  let worker d =
    let rec loop () =
      if not (stop ()) then begin
        let c = Atomic.fetch_and_add next 1 in
        if c < nchunks then begin
          let t0 = Clock.now_s () in
          (try work ~domain:d c
           with exn ->
             let bt = Printexc.get_raw_backtrace () in
             (* Remember the first failure; let other domains drain the
                queue (each remaining chunk is cheap to skip because we
                stop claiming once a failure is recorded). *)
             ignore (Atomic.compare_and_set failure None (Some (exn, bt))));
          busy.(d * stride) <- busy.(d * stride) +. (Clock.now_s () -. t0);
          loop ()
        end
      end
    in
    loop ()
  in
  let previous_handler =
    if not handle_sigint then None
    else
      Some
        (Sys.signal Sys.sigint
           (Sys.Signal_handle (fun _ -> Atomic.set interrupted true)))
  in
  let t0 = Clock.now_s () in
  let finish () =
    match previous_handler with
    | Some h -> Sys.set_signal Sys.sigint h
    | None -> ()
  in
  (if jobs = 1 then worker 0
   else begin
     (* Backtrace recording is per-domain state in OCaml 5; propagate the
        caller's setting so a failure on a spawned domain still carries
        its raise site. *)
     let record_bt = Printexc.backtrace_status () in
     let saved_gc = Gc.get () in
     tune_gc ();
     let domains =
       Array.init (jobs - 1) (fun i ->
           Domain.spawn (fun () ->
               Printexc.record_backtrace record_bt;
               tune_gc ();
               worker (i + 1)))
     in
     worker 0;
     Array.iter Domain.join domains;
     Gc.set saved_gc
   end);
  finish ();
  let wall_s = Clock.now_s () -. t0 in
  (match Atomic.get failure with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ());
  (wall_s, Array.init jobs (fun d -> busy.(d * stride)), Atomic.get interrupted)

(* Default chunk: grow with the sweep so each queue pop is a substantial
   contiguous block of work, but depend only on [replications] — the
   chunk layout fixes the merge grouping, so it must never vary with
   [jobs] or the aggregates would stop being jobs-independent. *)
let default_chunk ~replications = Int.max 4 (Int.min 64 (replications / 32))

let validate ?jobs ?chunk ?(on_error = Abort) ?rep_timeout_s ~replications () =
  if replications < 0 then invalid_arg "Runner: replications < 0";
  (match rep_timeout_s with
  | Some s when not (Float.is_finite s) || s <= 0.0 ->
      invalid_arg "Runner: rep_timeout_s must be finite positive"
  | _ -> ());
  let chunk = match chunk with Some c -> c | None -> default_chunk ~replications in
  if chunk < 1 then invalid_arg "Runner: chunk < 1";
  (match on_error with
  | Retry n when n < 1 -> invalid_arg "Runner: Retry count < 1"
  | _ -> ());
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Runner: jobs < 1";
  let nchunks = (replications + chunk - 1) / chunk in
  (* Never spawn more domains than there are chunks to claim. *)
  let jobs = Int.max 1 (Int.min jobs nchunks) in
  (jobs, chunk, nchunks)

let chunk_bounds ~chunk ~replications c =
  let lo = c * chunk in
  (lo, Int.min replications (lo + chunk))

(* One replication under the failure policy: derive the stream, run,
   retry on fresh streams as allowed, and either return the value or the
   last failure.  Everything here depends only on (master_seed, index,
   on_error), so skipping and retrying preserve the bit-identical
   aggregation of the surviving replications across any [jobs] count. *)
let run_replication ~on_error ~rep_timeout_s ~master_seed ~index f =
  let retries = match on_error with Retry n -> n | Abort | Skip -> 0 in
  let rec go attempt =
    let rng = derive_retry_rng ~master_seed ~index ~attempt in
    let t0 =
      match rep_timeout_s with
      | None -> 0.0
      | Some s ->
          let now = Clock.now_s () in
          Domain.DLS.set deadline_key (now +. s);
          now
    in
    let outcome =
      match f ~rng ~index with
      | v -> (
          match rep_timeout_s with
          | Some s when Clock.now_s () -. t0 > s ->
              (* The attempt outran its watchdog even though it finished:
                 a late value is a failed value — trusting it would make
                 the sweep's duration bound a lie. *)
              Error (Rep_timeout, Printexc.get_callstack 0)
          | _ -> Ok v)
      | exception exn -> Error (exn, Printexc.get_raw_backtrace ())
    in
    if rep_timeout_s <> None then Domain.DLS.set deadline_key infinity;
    match outcome with
    | Ok v -> Ok v
    | Error (error, backtrace) ->
        if attempt < retries then go (attempt + 1) else Error { index; error; backtrace }
  in
  go 0

(* Per-chunk fault bookkeeping: each chunk owns its own slots, so the
   records are race-free and, concatenated in chunk order, sorted by
   replication index. *)
type chunk_log = { failures : failure list array; over : int array }

let chunk_log nchunks = { failures = Array.make nchunks []; over = Array.make nchunks 0 }

let log_of ~(log : chunk_log) ~wall_s ~jobs ~nchunks ~busy ~interrupted =
  {
    wall_s;
    jobs;
    chunks = nchunks;
    busy_s = busy;
    failures = List.concat_map List.rev (Array.to_list log.failures);
    over_budget = Array.fold_left ( + ) 0 log.over;
    interrupted;
  }

(* Run replication [i] of chunk [c], enforcing policy and wall budget;
   [keep] consumes the value of a surviving replication. *)
let step ~on_error ~budget_s ~rep_timeout_s ~progress ~(log : chunk_log) ~master_seed ~c ~keep
    f i =
  let result =
    match budget_s with
    | None ->
        (* No budget means no clock reads: short replications are cheap
           enough for two gettimeofday calls apiece to show up. *)
        run_replication ~on_error ~rep_timeout_s ~master_seed ~index:i f
    | Some budget ->
        let t0 = Clock.now_s () in
        let result = run_replication ~on_error ~rep_timeout_s ~master_seed ~index:i f in
        if Clock.now_s () -. t0 > budget then log.over.(c) <- log.over.(c) + 1;
        result
  in
  Progress.step progress;
  match result with
  | Ok v -> keep v
  | Error fail -> (
      match on_error with
      | Abort -> Printexc.raise_with_backtrace fail.error fail.backtrace
      | Skip | Retry _ -> log.failures.(c) <- fail :: log.failures.(c))

(* Per-domain replication-duration histograms: the observable behind
   the runner's utilisation-imbalance question (ROADMAP item 2).  They
   are diagnostics of {e this} execution — chunk-to-domain assignment
   is racy by design — so, unlike every aggregate, their per-domain
   split is deliberately scheduling-dependent.  Each domain writes only
   its own histogram, honouring the single-domain instrument contract;
   merge them afterwards with [Hist.merge] if a pooled view is wanted. *)
let rep_hists ~hists ~jobs =
  match hists with
  | None -> [||]
  | Some g ->
      Array.init jobs (fun d -> Hist.get g (Printf.sprintf "runner/replication_s/domain%d" d))

let timed_step rep_h do_step =
  if Hist.live rep_h then begin
    let t0 = Clock.now_s () in
    do_step ();
    Hist.record rep_h (Clock.now_s () -. t0)
  end
  else do_step ()

let run_map ?jobs ?chunk ?on_error ?budget_s ?rep_timeout_s ?(handle_sigint = false)
    ?(progress = Progress.silent) ?hists ~master_seed ~replications f =
  let jobs, chunk, nchunks = validate ?jobs ?chunk ?on_error ?rep_timeout_s ~replications () in
  let on_error = Option.value on_error ~default:Abort in
  let log = chunk_log nchunks in
  let results = Array.make replications None in
  let rep_hists = rep_hists ~hists ~jobs in
  let work ~domain c =
    let rep_h = if Array.length rep_hists = 0 then Hist.disabled else rep_hists.(domain) in
    let lo, hi = chunk_bounds ~chunk ~replications c in
    for i = lo to hi - 1 do
      timed_step rep_h (fun () ->
          step ~on_error ~budget_s ~rep_timeout_s ~progress ~log ~master_seed ~c
            ~keep:(fun v -> results.(i) <- Some v)
            f i)
    done
  in
  let wall_s, busy, interrupted = drive ~jobs ~nchunks ~handle_sigint ~work in
  Progress.finish progress;
  (results, log_of ~log ~wall_s ~jobs ~nchunks ~busy ~interrupted)

let run_fold ?jobs ?chunk ?on_error ?budget_s ?rep_timeout_s ?(handle_sigint = false)
    ?(progress = Progress.silent) ?hists ~master_seed ~replications ~init ~add ~merge f =
  let jobs, chunk, nchunks = validate ?jobs ?chunk ?on_error ?rep_timeout_s ~replications () in
  let on_error = Option.value on_error ~default:Abort in
  let log = chunk_log nchunks in
  let accs = Array.make nchunks None in
  let rep_hists = rep_hists ~hists ~jobs in
  let work ~domain c =
    let rep_h = if Array.length rep_hists = 0 then Hist.disabled else rep_hists.(domain) in
    let lo, hi = chunk_bounds ~chunk ~replications c in
    let acc = init () in
    for i = lo to hi - 1 do
      timed_step rep_h (fun () ->
          step ~on_error ~budget_s ~rep_timeout_s ~progress ~log ~master_seed ~c
            ~keep:(add acc) f i)
    done;
    accs.(c) <- Some acc
  in
  let wall_s, busy, interrupted = drive ~jobs ~nchunks ~handle_sigint ~work in
  Progress.finish progress;
  (* Chunk order, not completion order: this is what makes the merged
     aggregate independent of the domain count.  A [None] chunk was never
     claimed (interrupt) and contributes nothing. *)
  let merged =
    Array.fold_left
      (fun acc -> function
        | Some a -> merge acc a
        | None ->
            assert interrupted;
            acc)
      (init ()) accs
  in
  (merged, log_of ~log ~wall_s ~jobs ~nchunks ~busy ~interrupted)

type hist_spec = { lo : float; hi : float; bins : int }

type rep = { values : float array; observations : float array; flagged : bool }

let rep ?(flagged = false) ?(obs = [||]) values = { values; observations = obs; flagged }

type summary = {
  stats : (string * Welford.t) list;
  hist : Histogram.t option;
  partial : int;
  timing : timing;
}

type sacc = {
  welford : Welford.t array;
  shist : Histogram.t option;
  mutable flagged : int;
}

let run_summary ?jobs ?chunk ?on_error ?budget_s ?rep_timeout_s ?handle_sigint ?progress
    ?hists ?hist ~metrics ~master_seed ~replications f =
  let nmetrics = List.length metrics in
  let init () =
    {
      welford = Array.init nmetrics (fun _ -> Welford.create ());
      shist = Option.map (fun { lo; hi; bins } -> Histogram.create ~lo ~hi ~bins) hist;
      flagged = 0;
    }
  in
  let add acc r =
    if Array.length r.values <> nmetrics then
      invalid_arg
        (Printf.sprintf "Runner.run_summary: thunk returned %d metrics, expected %d"
           (Array.length r.values) nmetrics);
    Array.iteri (fun m v -> Welford.add acc.welford.(m) v) r.values;
    if r.flagged then acc.flagged <- acc.flagged + 1;
    match acc.shist with
    | None -> ()
    | Some h -> Array.iter (Histogram.add h) r.observations
  in
  let merge a b =
    {
      welford = Array.init nmetrics (fun m -> Welford.merge a.welford.(m) b.welford.(m));
      shist =
        (match (a.shist, b.shist) with
        | Some ha, Some hb -> Some (Histogram.merge ha hb)
        | None, None -> None
        | _ -> assert false);
      flagged = a.flagged + b.flagged;
    }
  in
  let acc, timing =
    run_fold ?jobs ?chunk ?on_error ?budget_s ?rep_timeout_s ?handle_sigint ?progress ?hists
      ~master_seed ~replications ~init ~add ~merge f
  in
  {
    stats = List.mapi (fun m name -> (name, acc.welford.(m))) metrics;
    hist = acc.shist;
    partial = acc.flagged + timing.over_budget;
    timing;
  }
