module Rng = P2p_prng.Rng
module Welford = P2p_stats.Welford
module Histogram = P2p_stats.Histogram

type timing = {
  wall_s : float;
  jobs : int;
  chunks : int;
  busy_s : float array;
}

let utilisation t =
  if t.wall_s <= 0.0 then nan
  else
    Array.fold_left ( +. ) 0.0 t.busy_s
    /. (t.wall_s *. float_of_int (Array.length t.busy_s))

let pp_timing fmt t =
  Format.fprintf fmt "wall %.2fs, %d domain%s, %.0f%% busy" t.wall_s t.jobs
    (if t.jobs = 1 then "" else "s")
    (100.0 *. utilisation t)

let default_jobs () = Domain.recommended_domain_count ()

let derive_rng ~master_seed ~index = Rng.of_seed_pair ~master:master_seed ~stream:index

(* The scheduling core shared by run_map and run_fold.

   [work c] processes chunk [c] (a contiguous index range computed by the
   caller) and must only write to slots owned by that chunk.  Chunks are
   claimed from an atomic counter, so the assignment of chunks to domains
   is racy — but since every per-chunk result lands in a slot keyed by the
   chunk index, the *outputs* are scheduling-independent. *)
let drive ~jobs ~nchunks ~work =
  let next = Atomic.make 0 in
  let busy = Array.make jobs 0.0 in
  let failure = Atomic.make None in
  let worker d =
    let rec loop () =
      let c = Atomic.fetch_and_add next 1 in
      if c < nchunks then begin
        let t0 = Unix.gettimeofday () in
        (try work c
         with exn ->
           (* Remember the first failure; let other domains drain the
              queue (each remaining chunk is cheap to skip because we
              stop claiming once a failure is recorded). *)
           ignore (Atomic.compare_and_set failure None (Some exn)));
        busy.(d) <- busy.(d) +. (Unix.gettimeofday () -. t0);
        if Atomic.get failure = None then loop ()
      end
    in
    loop ()
  in
  let t0 = Unix.gettimeofday () in
  if jobs = 1 then worker 0
  else begin
    let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    Array.iter Domain.join domains
  end;
  let wall_s = Unix.gettimeofday () -. t0 in
  (match Atomic.get failure with Some exn -> raise exn | None -> ());
  { wall_s; jobs; chunks = nchunks; busy_s = busy }

let validate ?jobs ?(chunk = 4) ~replications () =
  if replications < 0 then invalid_arg "Runner: replications < 0";
  if chunk < 1 then invalid_arg "Runner: chunk < 1";
  let jobs = match jobs with None -> default_jobs () | Some j -> j in
  if jobs < 1 then invalid_arg "Runner: jobs < 1";
  let nchunks = (replications + chunk - 1) / chunk in
  (* Never spawn more domains than there are chunks to claim. *)
  let jobs = Int.max 1 (Int.min jobs nchunks) in
  (jobs, chunk, nchunks)

let chunk_bounds ~chunk ~replications c =
  let lo = c * chunk in
  (lo, Int.min replications (lo + chunk))

let run_map ?jobs ?chunk ~master_seed ~replications f =
  let jobs, chunk, nchunks = validate ?jobs ?chunk ~replications () in
  let results = Array.make replications None in
  let work c =
    let lo, hi = chunk_bounds ~chunk ~replications c in
    for i = lo to hi - 1 do
      let rng = derive_rng ~master_seed ~index:i in
      results.(i) <- Some (f ~rng ~index:i)
    done
  in
  let timing = drive ~jobs ~nchunks ~work in
  ( Array.map
      (function Some v -> v | None -> assert false (* drive raised otherwise *))
      results,
    timing )

let run_fold ?jobs ?chunk ~master_seed ~replications ~init ~add ~merge f =
  let jobs, chunk, nchunks = validate ?jobs ?chunk ~replications () in
  let accs = Array.make nchunks None in
  let work c =
    let lo, hi = chunk_bounds ~chunk ~replications c in
    let acc = init () in
    for i = lo to hi - 1 do
      let rng = derive_rng ~master_seed ~index:i in
      add acc (f ~rng ~index:i)
    done;
    accs.(c) <- Some acc
  in
  let timing = drive ~jobs ~nchunks ~work in
  (* Chunk order, not completion order: this is what makes the merged
     aggregate independent of the domain count. *)
  let merged =
    Array.fold_left
      (fun acc -> function Some a -> merge acc a | None -> assert false)
      (init ()) accs
  in
  (merged, timing)

type hist_spec = { lo : float; hi : float; bins : int }

type summary = {
  stats : (string * Welford.t) list;
  hist : Histogram.t option;
  timing : timing;
}

type sacc = { welford : Welford.t array; shist : Histogram.t option }

let run_summary ?jobs ?chunk ?hist ~metrics ~master_seed ~replications f =
  let nmetrics = List.length metrics in
  let init () =
    {
      welford = Array.init nmetrics (fun _ -> Welford.create ());
      shist = Option.map (fun { lo; hi; bins } -> Histogram.create ~lo ~hi ~bins) hist;
    }
  in
  let add acc (values, observations) =
    if Array.length values <> nmetrics then
      invalid_arg
        (Printf.sprintf "Runner.run_summary: thunk returned %d metrics, expected %d"
           (Array.length values) nmetrics);
    Array.iteri (fun m v -> Welford.add acc.welford.(m) v) values;
    match acc.shist with
    | None -> ()
    | Some h -> Array.iter (Histogram.add h) observations
  in
  let merge a b =
    {
      welford = Array.init nmetrics (fun m -> Welford.merge a.welford.(m) b.welford.(m));
      shist =
        (match (a.shist, b.shist) with
        | Some ha, Some hb -> Some (Histogram.merge ha hb)
        | None, None -> None
        | _ -> assert false);
    }
  in
  let acc, timing = run_fold ?jobs ?chunk ~master_seed ~replications ~init ~add ~merge f in
  {
    stats = List.mapi (fun m name -> (name, acc.welford.(m))) metrics;
    hist = acc.shist;
    timing;
  }
