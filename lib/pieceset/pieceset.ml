type t = int
type piece = int

let max_pieces = 62

let empty = 0

let check_k k =
  if k < 1 || k > max_pieces then
    invalid_arg (Printf.sprintf "Pieceset: k = %d out of range [1, %d]" k max_pieces)

let full ~k =
  check_k k;
  (* For k = 62 this is max_int, the all-ones pattern of a 63-bit int. *)
  (1 lsl k) - 1

let check_piece i =
  if i < 0 || i >= max_pieces then
    invalid_arg (Printf.sprintf "Pieceset: piece %d out of range [0, %d)" i max_pieces)

let singleton i =
  check_piece i;
  1 lsl i

let mem i c = c land (1 lsl i) <> 0

let add i c =
  check_piece i;
  c lor (1 lsl i)

let remove i c = c land lnot (1 lsl i)

(* Index of the lowest set bit: isolate it with [c land -c], then read the
   six binary digits of its position off fixed masks — O(1) and
   branch-predictable, shared by [fold], [iter], [nth_element] and
   [lowest].  (The classic de Bruijn multiply assumes 64-bit wraparound;
   OCaml ints are 63-bit, so positional masks are the safe equivalent.)
   [digit_mask j] covers the positions whose j-th index bit is 1. *)
let digit_mask j =
  let m = ref 0 in
  for i = 0 to max_pieces do
    if (i lsr j) land 1 = 1 then m := !m lor (1 lsl i)
  done;
  !m

let m0 = digit_mask 0
let m1 = digit_mask 1
let m2 = digit_mask 2
let m3 = digit_mask 3
let m4 = digit_mask 4
let m5 = digit_mask 5

let[@inline] lowest_bit c =
  let b = c land -c in
  (if b land m0 <> 0 then 1 else 0)
  lor (if b land m1 <> 0 then 2 else 0)
  lor (if b land m2 <> 0 then 4 else 0)
  lor (if b land m3 <> 0 then 8 else 0)
  lor (if b land m4 <> 0 then 16 else 0)
  lor (if b land m5 <> 0 then 32 else 0)

let cardinal c =
  (* Kernighan popcount; sets are small so this is plenty fast. *)
  let rec count c acc = if c = 0 then acc else count (c land (c - 1)) (acc + 1) in
  count c 0

let is_empty c = c = 0
let is_full ~k c = c = full ~k
let subset a b = a land lnot b = 0
let proper_subset a b = a <> b && subset a b
let can_help ~uploader ~downloader = not (subset uploader downloader)
let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let complement ~k c = full ~k land lnot c
let missing_count ~k c = k - cardinal c

let fold f c init =
  let rec go c acc = if c = 0 then acc else go (c land (c - 1)) (f (lowest_bit c) acc) in
  go c init

let iter f c =
  let rec go c =
    if c <> 0 then begin
      f (lowest_bit c);
      go (c land (c - 1))
    end
  in
  go c

let elements c = List.rev (fold (fun i acc -> i :: acc) c [])

let of_list pieces = List.fold_left (fun acc i -> add i acc) empty pieces

let nth_element c i =
  if i < 0 then invalid_arg "Pieceset.nth_element: negative index";
  let rec go c i =
    if c = 0 then invalid_arg "Pieceset.nth_element: index out of range"
    else if i = 0 then lowest_bit c
    else go (c land (c - 1)) (i - 1)
  in
  go c i

let choose_uniform draw c =
  let n = cardinal c in
  if n = 0 then invalid_arg "Pieceset.choose_uniform: empty set";
  nth_element c (draw n)

let lowest c =
  if c = 0 then invalid_arg "Pieceset.lowest: empty set";
  lowest_bit c

let to_index c = c

let of_index i =
  (* Any nonnegative int is a valid 62-piece bitmask. *)
  if i < 0 then invalid_arg "Pieceset.of_index: negative";
  i

let all ~k =
  check_k k;
  List.init (1 lsl k) (fun i -> i)

let all_proper ~k =
  check_k k;
  List.init ((1 lsl k) - 1) (fun i -> i)

let subsets_of c =
  (* Standard sub-mask enumeration: walk s = (s - 1) land c. *)
  let rec go s acc = if s = 0 then 0 :: acc else go ((s - 1) land c) (s :: acc) in
  go c []

let strict_supersets_within ~k c =
  let f = full ~k in
  let missing = diff f c in
  (* Supersets of c are c lor m for every nonempty sub-mask m of missing. *)
  List.filter_map (fun m -> if m = 0 then None else Some (c lor m)) (subsets_of missing)

let compare = Int.compare
let equal = Int.equal
let hash c = c * 0x2545F491 land max_int

let pp fmt c =
  let ones = List.map (fun i -> i + 1) (elements c) in
  Format.fprintf fmt "{%a}" Format.(pp_print_list ~pp_sep:(fun f () -> pp_print_string f ",") pp_print_int) ones

let to_string c = Format.asprintf "%a" pp c
