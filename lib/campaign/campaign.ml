module Json = P2p_obs.Json
module Progress = P2p_obs.Progress
module Probe = P2p_obs.Probe
module Recorder = P2p_obs.Recorder
module Runner = P2p_runner.Runner
module Rng = P2p_prng.Rng
open P2p_core

exception Simulated_crash

type options = {
  jobs : int option;
  on_error : Runner.on_error;
  cell_timeout_s : float option;
  retry_backoff_s : float;
  checkpoint_every : int;
  progress : bool;
  registry : string option;
  command : string;
  crash_after_cells : int option;
  fault_hook : (int -> unit) option;
  handle_signals : bool;
  flight_recorder : string option;
}

let default_options =
  {
    jobs = None;
    on_error = Runner.Abort;
    cell_timeout_s = None;
    retry_backoff_s = 1.0;
    checkpoint_every = 25;
    progress = false;
    registry = None;
    command = "";
    crash_after_cells = None;
    fault_hook = None;
    handle_signals = false;
    flight_recorder = None;
  }

type outcome = {
  dir : string;
  cells_done : int;
  cells_run : int;
  failed : int;
  interrupted : bool;
  complete : bool;
}

(* ---- deterministic cell seeding ---- *)

let cell_seed (spec : Spec.t) ~index ~attempt =
  if attempt < 0 then invalid_arg "Campaign.cell_seed: attempt < 0";
  let s0 = Int64.to_int (Rng.bits64 (Rng.of_seed_pair ~master:spec.master_seed ~stream:index)) in
  if attempt = 0 then s0
  else Int64.to_int (Rng.bits64 (Rng.of_seed_pair ~master:s0 ~stream:attempt))

(* ---- one cell ---- *)

type aggregate = {
  growth : float;
  mean_n : float;
  n_stable : int;
  n_unstable : int;
  n_inconclusive : int;
}

let sim_verdict a =
  if a.n_stable > a.n_unstable then "stable"
  else if a.n_unstable > a.n_stable then "unstable"
  else if a.n_stable = 0 && a.n_unstable = 0 then "inconclusive"
  else "mixed"

(* The coded cell workload mirrors the markov one: empty-handed arrivals
   at rate λ (gift fraction 0), the spec's U_s, μ, γ, over GF(q). *)
let coded_gift (spec : Spec.t) (cell : Spec.cell) =
  {
    Stability.Coded.q = spec.q;
    k = spec.k;
    us = cell.us;
    mu = spec.mu;
    gamma = spec.gamma;
    lambda0 = cell.lambda;
    lambda1 = 0.0;
  }

let theory_verdict (spec : Spec.t) (cell : Spec.cell) =
  Stability.verdict_to_string
    (match spec.backend with
    | "coded" -> Stability.Coded.classify (coded_gift spec cell)
    | _ -> Stability.classify (Spec.cell_params spec ~lambda:cell.lambda ~us:cell.us))

(* Fixed field order: the record is part of the byte-identity contract.
   No wall-clock data — timestamps live only in the registry. *)
let render_record spec (cell : Spec.cell) ~agg ~attempts ~errors =
  let verdict, growth, mean_n, (ns, nu, ni), status =
    match agg with
    | Some a ->
        (sim_verdict a, a.growth, a.mean_n, (a.n_stable, a.n_unstable, a.n_inconclusive), "ok")
    | None -> ("failed", nan, nan, (0, 0, 0), "failed")
  in
  Json.Obj
    [
      ("cell", Json.Int cell.index);
      ("round", Json.Int cell.round);
      ("ix", Json.Int cell.ix);
      ("iy", Json.Int cell.iy);
      ("lambda", Json.Float cell.lambda);
      ("us", Json.Float cell.us);
      ("theory", Json.String (theory_verdict spec cell));
      ("verdict", Json.String verdict);
      ("growth", Json.Float growth);
      ("mean_n", Json.Float mean_n);
      ("stable", Json.Int ns);
      ("unstable", Json.Int nu);
      ("inconclusive", Json.Int ni);
      ("reps", Json.Int spec.reps);
      ("attempts", Json.Int attempts);
      ("status", Json.String status);
      ("errors", Json.List (List.map (fun e -> Json.String e) errors));
    ]

let cell_aggregate ?jobs ?timeout_s ?flight_dir (spec : Spec.t) (cell : Spec.cell) ~attempt =
  let master_seed = cell_seed spec ~index:cell.index ~attempt in
  (* One replication, dispatched on the spec's backend.  Both simulators
     share the watchdog contract ([until] + [stopped]) and the samples
     array the classifier consumes. *)
  let replicate : rng:Rng.t -> probe:Probe.t -> (float * int) array =
    match spec.backend with
    | "coded" ->
        let config =
          {
            Sim_coded.q = spec.q;
            k = spec.k;
            us = cell.us;
            mu = spec.mu;
            gamma = spec.gamma;
            arrivals = [ (0, cell.lambda) ];
            smart_exchange = false;
            faults = spec.faults;
          }
        in
        fun ~rng ~probe ->
          let stats =
            Sim_coded.run ~rng ~probe
              ~until:(fun ~time:_ ~n:_ -> Runner.deadline_exceeded ())
              config ~horizon:spec.horizon
          in
          if stats.Sim_coded.stopped then raise Runner.Rep_timeout;
          stats.Sim_coded.samples
    | _ ->
        let params = Spec.cell_params spec ~lambda:cell.lambda ~us:cell.us in
        let config =
          {
            Sim_markov.params;
            policy = Spec.policy_fun spec;
            initial = [];
            faults = spec.faults;
          }
        in
        if spec.shards > 1 then
          (* One giant sharded run per cell (the spec validator pinned
             reps = 1).  The cell's domains go to the shard windows, not
             to replications; the flight recorder, being per-domain
             state, rides shard 0 only (the clockwork shard). *)
          fun ~rng ~probe ->
            let stats, _, _ =
              Sim_markov.run_sharded
                ~probes:(fun i -> if i = 0 then probe else Probe.none)
                ?jobs ~should_stop:Runner.deadline_exceeded ~shards:spec.shards ~rng config
                ~horizon:spec.horizon
            in
            if stats.Sim_markov.stopped then raise Runner.Rep_timeout;
            stats.Sim_markov.samples
        else
          fun ~rng ~probe ->
            let stats, _ =
              Sim_markov.run ~rng ~probe
                ~until:(fun ~time:_ ~n:_ -> Runner.deadline_exceeded ())
                config ~horizon:spec.horizon
            in
            if stats.Sim_markov.stopped then raise Runner.Rep_timeout;
            stats.Sim_markov.samples
  in
  (match flight_dir with
  | Some dir when not (Sys.file_exists dir) -> (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | _ -> ());
  let results, _timing =
    Runner.run_map ?jobs ?rep_timeout_s:timeout_s ~on_error:Runner.Abort ~master_seed
      ~replications:spec.reps (fun ~rng ~index:_ ->
        (* Per-replication flight recorder.  The dump path is keyed by
           the executing domain, never shared across live domains, so
           concurrent atomic snapshots cannot collide on their
           temporaries (domains share a PID).  The recorder both
           auto-snapshots while the replication runs — the SIGKILL
           survival story — and dumps explicitly on any failure,
           including the [Rep_timeout] the watchdog raises. *)
        let probe, dump =
          match flight_dir with
          | None -> (Probe.none, fun () -> ())
          | Some dir ->
              let r = Recorder.create () in
              let path =
                Filename.concat dir
                  (Printf.sprintf "cell-%d-d%d.jsonl" cell.index (Domain.self () :> int))
              in
              (* check the wall-clock gap every 256 events: dense enough
                 that even a short-lived cell republishes promptly, while
                 [min_gap_s] keeps the disk traffic bounded *)
              Recorder.auto_snapshot r ~every:256 ~min_gap_s:0.5 ~code_name:Probe.code_name
                path;
              (Probe.make ~recorder:r (), fun () -> Recorder.dump r ~code_name:Probe.code_name path)
        in
        (* [until] only fires when a watchdog is armed; a stopped run is
           a timed-out run and [replicate] raises [Rep_timeout]. *)
        match replicate ~rng ~probe with
        | exception e ->
            dump ();
            raise e
        | samples ->
            dump ();
            Classify.of_samples samples)
  in
  let results = Array.to_list results |> List.filter_map Fun.id in
  let n = List.length results in
  let count v = List.length (List.filter (fun (r : Classify.result) -> r.verdict = v) results) in
  let mean f =
    if n = 0 then nan else List.fold_left (fun acc r -> acc +. f r) 0.0 results /. float_of_int n
  in
  {
    growth = mean (fun (r : Classify.result) -> r.growth_rate);
    mean_n = mean (fun (r : Classify.result) -> r.mean_n);
    n_stable = count Classify.Appears_stable;
    n_unstable = count Classify.Appears_unstable;
    n_inconclusive = count Classify.Inconclusive;
  }

let run_cell ?jobs ?timeout_s spec cell ~attempt =
  let agg = cell_aggregate ?jobs ?timeout_s spec cell ~attempt in
  render_record spec cell ~agg:(Some agg) ~attempts:(attempt + 1) ~errors:[]

(* The cell-level failure policy: retry with exponential backoff on
   fresh deterministic streams; exhaustion either aborts the campaign or
   records the cell as failed with its error history. *)
let execute_cell opts spec cell =
  let max_attempts = match opts.on_error with Runner.Retry n -> n + 1 | _ -> 1 in
  let rec go attempt errors =
    match
      cell_aggregate ?jobs:opts.jobs ?timeout_s:opts.cell_timeout_s
        ?flight_dir:opts.flight_recorder spec cell ~attempt
    with
    | agg ->
        Ok (render_record spec cell ~agg:(Some agg) ~attempts:(attempt + 1) ~errors:(List.rev errors))
    | exception exn ->
        let label =
          match exn with Runner.Rep_timeout -> "timeout" | e -> Printexc.to_string e
        in
        let errors = label :: errors in
        if attempt + 1 < max_attempts then begin
          let delay = opts.retry_backoff_s *. Float.pow 2.0 (float_of_int attempt) in
          if delay > 0.0 then Unix.sleepf delay;
          go (attempt + 1) errors
        end
        else
          let errors = List.rev errors in
          match opts.on_error with
          | Runner.Abort -> Error (label, errors)
          | Runner.Skip | Runner.Retry _ ->
              Ok (render_record spec cell ~agg:None ~attempts:max_attempts ~errors)
  in
  go 0 []

(* ---- signals ---- *)

let install_handlers flag =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set flag true) in
  let prev_int = Sys.signal Sys.sigint handler in
  let prev_term = Sys.signal Sys.sigterm handler in
  fun () ->
    Sys.set_signal Sys.sigint prev_int;
    Sys.set_signal Sys.sigterm prev_term

(* ---- registry ---- *)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let append_registry opts (spec : Spec.t) ~dir ~status ~cells_done ~failed =
  match opts.registry with
  | None -> ()
  | Some path ->
      let entry =
        Json.Obj
          [
            ("time", Json.String (iso8601 (Unix.time ())));
            ("name", Json.String spec.name);
            ("hypothesis", Json.String spec.hypothesis);
            ("spec_hash", Json.String (Spec.hash spec));
            ("dir", Json.String dir);
            ("command", Json.String opts.command);
            ("cells_done", Json.Int cells_done);
            ("failed", Json.Int failed);
            ("status", Json.String status);
          ]
      in
      let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          Json.to_channel oc entry;
          output_char oc '\n';
          flush oc)

(* ---- the drive loop ---- *)

type stop = Complete | Interrupted | Aborted of string

let drive store (spec : Spec.t) opts ~dir ~recovered =
  let recovered = Array.of_list recovered in
  let n_recovered = Array.length recovered in
  (* Recovered records must form the exact planned prefix. *)
  let prefix_error = ref None in
  Array.iteri
    (fun i r ->
      if !prefix_error = None then
        match Json.member "cell" r with
        | Some (Json.Int j) when j = i -> ()
        | _ -> prefix_error := Some (Printf.sprintf "store record %d does not describe cell %d" i i))
    recovered;
  match !prefix_error with
  | Some msg -> Error msg
  | None ->
      let verdicts = ref [] in
      let failed = ref 0 in
      let cells_run = ref 0 in
      let since_checkpoint = ref 0 in
      let interrupted = Atomic.make false in
      let restore =
        if opts.handle_signals then install_handlers interrupted else fun () -> ()
      in
      let note_record (cell : Spec.cell) record =
        (match Json.member "verdict" record with
        | Some (Json.String v) -> verdicts := ((cell.ix, cell.iy), v) :: !verdicts
        | _ -> ());
        match Json.member "status" record with
        | Some (Json.String "failed") -> incr failed
        | _ -> ()
      in
      let process_round cells =
        let meter =
          if opts.progress && cells <> [] then
            Progress.create ~label:"cells" ~total:(List.length cells) ()
          else Progress.silent
        in
        let finish r =
          Progress.finish meter;
          r
        in
        let rec loop = function
          | [] -> finish (Ok `Round_done)
          | (cell : Spec.cell) :: rest ->
              if Atomic.get interrupted then finish (Ok `Interrupted)
              else if cell.index < n_recovered then begin
                note_record cell recovered.(cell.index);
                Progress.step meter;
                loop rest
              end
              else begin
                match execute_cell opts spec cell with
                | Error (label, _) ->
                    finish
                      (Ok (`Aborted (Printf.sprintf "cell %d (λ=%g, U_s=%g): %s" cell.index cell.lambda cell.us label)))
                | Ok record ->
                    Store.append store (Json.to_string record);
                    incr cells_run;
                    note_record cell record;
                    (match opts.fault_hook with
                    | Some hook -> hook (Store.records store)
                    | None -> ());
                    (match opts.crash_after_cells with
                    | Some n when !cells_run >= n ->
                        (* a kill at a cell boundary: no cleanup, no
                           checkpoint, the active segment as-is *)
                        exit 99
                    | _ -> ());
                    incr since_checkpoint;
                    if !since_checkpoint >= opts.checkpoint_every then begin
                      Store.seal store;
                      Store.checkpoint store ~complete:false ~interrupted:false;
                      since_checkpoint := 0
                    end;
                    Progress.step meter;
                    loop rest
              end
        in
        loop cells
      in
      let rec rounds round next_index =
        let cells =
          if round = 0 then Spec.round0_cells spec
          else Spec.next_round_cells spec ~round ~verdicts:!verdicts ~next_index
        in
        match process_round cells with
        | Error _ as e -> e
        | Ok `Interrupted -> Ok Interrupted
        | Ok (`Aborted msg) -> Ok (Aborted msg)
        | Ok `Round_done ->
            if round >= Spec.total_rounds spec then Ok Complete
            else rounds (round + 1) (next_index + List.length cells)
      in
      let result = rounds 0 0 in
      restore ();
      let outcome_of status =
        {
          dir;
          cells_done = Store.records store;
          cells_run = !cells_run;
          failed = !failed;
          interrupted = (status = "interrupted");
          complete = (status = "complete");
        }
      in
      let finish_with status =
        let o = outcome_of status in
        append_registry opts spec ~dir ~status ~cells_done:o.cells_done ~failed:o.failed;
        o
      in
      match result with
      | Error msg ->
          Store.close store;
          Error msg
      | Ok Complete ->
          Store.finalise store;
          let o = finish_with "complete" in
          Store.close store;
          Ok o
      | Ok Interrupted ->
          Store.checkpoint store ~complete:false ~interrupted:true;
          let o = finish_with "interrupted" in
          Store.close store;
          Ok o
      | Ok (Aborted msg) ->
          Store.checkpoint store ~complete:false ~interrupted:false;
          let o = finish_with "aborted" in
          Store.close store;
          ignore o;
          Error (Printf.sprintf "campaign aborted at %s (store remains resumable in %s)" msg dir)

let run ~dir opts spec =
  match Store.create ~dir ~spec_json:(Spec.to_json spec) ~spec_hash:(Spec.hash spec) with
  | Error _ as e -> e
  | Ok store -> drive store spec opts ~dir ~recovered:[]

let resume ~dir opts =
  match Store.resume ~dir with
  | Error _ as e -> e
  | Ok (store, spec_json, recovery) -> (
      match Spec.of_json spec_json with
      | Error msg ->
          Store.close store;
          Error (Printf.sprintf "%s: recorded spec no longer parses: %s" dir msg)
      | Ok spec ->
          drive store spec opts ~dir ~recovered:recovery.Store.records)

(* ---- status ---- *)

let status ~dir =
  match Store.read_status ~dir with
  | Error _ as e -> e
  | Ok st ->
      let count pred =
        List.length
          (List.filter
             (fun r ->
               match Json.member "verdict" r with
               | Some (Json.String v) -> pred v
               | _ -> false)
             st.store_records)
      in
      let name =
        match Option.bind st.spec (Json.member "name") with
        | Some (Json.String s) -> s
        | _ -> "?"
      in
      let spec_hash =
        match st.spec with
        | Some s -> Digest.to_hex (Digest.string (Json.to_string s))
        | None -> "?"
      in
      let total =
        match st.spec with
        | None -> Json.Null
        | Some s -> (
            match Spec.of_json s with
            | Error _ -> Json.Null
            | Ok spec -> (
                match Spec.grid_total spec with
                | Some t -> Json.Int t
                | None -> Json.Null))
      in
      Ok
        (Json.Obj
           [
             ("name", Json.String name);
             ("spec_hash", Json.String spec_hash);
             ("cells_done", Json.Int (List.length st.store_records));
             ("grid_total", total);
             ("stable", Json.Int (count (String.equal "stable")));
             ("unstable", Json.Int (count (String.equal "unstable")));
             ("other", Json.Int (count (fun v -> v <> "stable" && v <> "unstable")));
             ( "failed",
               Json.Int
                 (List.length
                    (List.filter
                       (fun r -> Json.member "status" r = Some (Json.String "failed"))
                       st.store_records)) );
             ("segments", Json.Int st.segments);
             ("quarantined", Json.Int st.quarantined);
             ("complete", Json.Bool st.complete);
             ( "checkpoint",
               match st.checkpoint with Some c -> c | None -> Json.Null );
           ])
