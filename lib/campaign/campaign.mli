(** The campaign engine: executes a {!Spec.t} cell by cell through the
    replication runner, persisting every result in a crash-safe
    {!Store}.

    {b Determinism.}  Cell [i] draws all of its randomness from a seed
    derived from [(spec.master_seed, i, attempt)] — never from wall
    clock, scheduling, or which cells crashed around it — and the store
    records no timestamps.  Two consequences the tests pin:

    - running the same spec twice yields byte-identical [results.jsonl];
    - a campaign killed at any cell and resumed yields the {e same}
      bytes as one that never died: recovered records stand in for the
      prefix, and the remaining cells re-derive their seeds from their
      indices alone.  (Wall-clock {e timeouts} are the one escape hatch:
      a cell recorded as failed because the machine was slow is real
      nondeterminism, which is why timeouts are off by default.)

    {b Failure policy.}  A cell whose replications raise — including the
    cooperative {!P2p_runner.Runner.Rep_timeout} watchdog — is handled
    by {!on_error}: abort the campaign (store stays valid and
    resumable), skip the cell (recorded as failed with its error
    history), or retry with exponential backoff, each attempt on a fresh
    deterministic stream.

    {b Interruption.}  With [handle_signals], SIGINT/SIGTERM set a flag
    polled between cells: the active segment is flushed (it always is),
    a valid checkpoint is written, and {!run} returns with
    [interrupted = true] — ready for {!resume}. *)

module Json = P2p_obs.Json
module Runner = P2p_runner.Runner

exception Simulated_crash
(** Raised by the test fault hook to die mid-campaign without unwinding
    cleanup — the in-process stand-in for SIGKILL. *)

type options = {
  jobs : int option;  (** domains per cell sweep; [None] = runner default *)
  on_error : Runner.on_error;  (** cell-level failure policy *)
  cell_timeout_s : float option;
      (** wall-clock watchdog per replication of a cell; an overrunning
          cell fails with [Rep_timeout] and follows [on_error] *)
  retry_backoff_s : float;
      (** base backoff before retry attempt [a]: [retry_backoff_s * 2^(a-1)]
          seconds (0 = immediate; tests use 0) *)
  checkpoint_every : int;  (** seal + checkpoint every N cells *)
  progress : bool;
      (** live per-round cell counter/ETA on stderr ({!P2p_obs.Progress}
          with label ["cells"]); purely observational *)
  registry : string option;  (** experiment-log JSONL to append a registry entry to *)
  command : string;  (** exact invocation recorded in the registry entry *)
  crash_after_cells : int option;
      (** testing: [exit 99] immediately after persisting the Nth new
          record of this process — simulates a kill at a cell boundary *)
  fault_hook : (int -> unit) option;
      (** testing: called with the store's record count after each
          append; raise {!Simulated_crash} to die in-process *)
  handle_signals : bool;  (** trap SIGINT/SIGTERM into a clean interrupt *)
  flight_recorder : string option;
      (** directory for per-cell flight dumps: every replication records
          the last few thousand engine events into a preallocated ring,
          auto-snapshotted atomically to [cell-<index>-d<domain>.jsonl]
          while it runs (so even a SIGKILLed cell leaves a complete,
          parseable dump behind) and dumped explicitly when the
          replication fails or its [cell_timeout_s] watchdog fires.
          Paths are keyed by the executing domain, so concurrent domains
          never share a snapshot destination.  Purely observational:
          recorded cells produce byte-identical store records. *)
}

val default_options : options
(** Abort on error, no timeout, backoff 1s, checkpoint every 25 cells,
    silent, no registry, no crash hooks, no signal handling, no flight
    recorder. *)

type outcome = {
  dir : string;
  cells_done : int;  (** records in the store (all processes so far) *)
  cells_run : int;  (** cells executed by {e this} process *)
  failed : int;  (** cells recorded with status "failed" *)
  interrupted : bool;
  complete : bool;  (** every planned cell done; [results.jsonl] written *)
}

val run : dir:string -> options -> Spec.t -> (outcome, string) result
(** Start a fresh campaign in [dir] (must not already hold one). *)

val resume : dir:string -> options -> (outcome, string) result
(** Continue a campaign from its store: recovered records (including a
    quarantined torn tail's intact prefix) stand in for completed cells,
    and execution picks up at the first missing one.  Rejects a
    directory whose recorded spec no longer parses or whose checkpoint
    hash disagrees with the spec. *)

val status : dir:string -> (Json.t, string) result
(** Summarise a campaign directory (spec name/hash, cells done, verdict
    counts, segments, quarantine, completeness) without modifying it. *)

(** {1 Cell execution} — exposed for tests *)

val cell_seed : Spec.t -> index:int -> attempt:int -> int
(** The master seed of attempt [attempt] of cell [index]; pure in
    [(spec.master_seed, index, attempt)]. *)

val run_cell : ?jobs:int -> ?timeout_s:float -> Spec.t -> Spec.cell -> attempt:int -> Json.t
(** Execute one cell (all [spec.reps] replications) and render its
    record.  Raises whatever the replications raise (first failure wins,
    runner [Abort] semantics). *)
