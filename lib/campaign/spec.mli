(** Declarative campaign specifications.

    A spec pins {e everything} a sweep's results depend on — model
    parameters, horizon, replication count, master seed, piece policy,
    fault model, and the cell geometry — so that a campaign is a pure
    function of its spec: two runs of the same spec produce byte-identical
    result stores, and a run resumed after a crash continues exactly
    where the dead one stopped.

    Two cell geometries:

    - {b Grid}: the full [lambda × U_s] product grid, every cell
      evaluated, row-major in [lambda] then [U_s].
    - {b Refine}: adaptive boundary refinement.  Round 0 evaluates a
      coarse grid; each later round bisects only the lattice edges whose
      endpoints got opposite simulated verdicts, homing in on the
      Theorem 1 stable/transient frontier with a fraction of the cells a
      uniform grid at the same resolution would need.  The refinement
      decision reads {e recorded} verdicts only, so a resumed campaign
      regenerates the identical cell sequence.

    Cells are addressed by integer lattice coordinates ([ix], [iy]) at
    the finest resolution, never by floats, so resume logic is immune to
    float-printing round trips. *)

module Json = P2p_obs.Json

type range = { lo : float; hi : float; steps : int }
(** [steps] evenly spaced values on [[lo, hi]] inclusive ([steps >= 2],
    or [steps = 1] meaning the single point [lo]). *)

type mode =
  | Grid of { lambda : range; us : range }
  | Refine of { lambda : float * float; us : float * float; initial : int; rounds : int }
      (** [initial] grid points per axis in round 0, then [rounds]
          bisection rounds along the verdict boundary. *)

type t = {
  name : string;
  hypothesis : string;  (** free-form hypothesis statement, e.g. "H-C1: ..." *)
  k : int;
  mu : float;
  gamma : float;  (** [infinity] = leave on completion *)
  horizon : float;
  reps : int;  (** replications per cell *)
  master_seed : int;
  policy : string;  (** "random" | "rarest" | "common" | "sequential" *)
  backend : string;
      (** "markov" (default) or "coded" — which simulator evaluates each
          cell.  Encoded in the spec JSON only when not the default, so
          existing markov specs keep their hashes (and result stores). *)
  q : int;  (** coded backend only: field size (default 16) *)
  shards : int;
      (** shards per cell run (default 1 = classic single-loop cell).
          [shards > 1] requires the markov backend and [reps = 1]: the
          cell is one giant sharded run ({!P2p_core.Sim_markov.run_sharded})
          instead of a replication sweep.  Like [backend], encoded only
          when not the default, so existing spec hashes are stable. *)
  faults : P2p_core.Faults.t;
  mode : mode;
}

val to_json : t -> Json.t
(** Canonical encoding: fixed field order, so {!hash} is stable. *)

val of_json : Json.t -> (t, string) result
val of_file : string -> (t, string) result
val hash : t -> string
(** Hex digest of the canonical encoding; recorded in the store and
    checkpoint, verified on resume. *)

(** {1 Cells} *)

type cell = {
  index : int;  (** global sequential id = position in the result store *)
  round : int;  (** 0 for grid cells *)
  ix : int;  (** lattice coordinate along [lambda], finest resolution *)
  iy : int;  (** lattice coordinate along [U_s], finest resolution *)
  lambda : float;
  us : float;
}

val lattice_extent : t -> int * int
(** Finest-resolution lattice extent [(nx, ny)]: valid [ix] are
    [0 .. nx] and [iy] [0 .. ny]. *)

val cell_value : t -> ix:int -> iy:int -> float * float
(** [(lambda, us)] of a lattice point. *)

val round0_cells : t -> cell list
(** The cells of round 0 (the whole grid for [Grid] mode), in execution
    order. *)

val next_round_cells :
  t -> round:int -> verdicts:((int * int) * string) list -> next_index:int -> cell list
(** The cells of refinement round [round >= 1], derived from the
    verdicts recorded so far (lattice coords -> verdict string; only
    ["stable"] vs ["unstable"] disagreement triggers bisection).  Empty
    for [Grid] mode, for rounds past [rounds], and once the boundary is
    fully resolved.  Deterministic: candidates are generated sorted and
    deduplicated, and numbered from [next_index]. *)

val total_rounds : t -> int
(** 0 for [Grid]; [rounds] for [Refine]. *)

val grid_total : t -> int option
(** Total cell count when known up front ([Grid] mode); [None] for
    adaptive refinement. *)

val cell_params : t -> lambda:float -> us:float -> P2p_core.Params.t
(** Model parameters of a cell: empty-handed arrivals at rate [lambda],
    seed rate [us], and the spec's [k], [mu], [gamma]. *)

val policy_fun : t -> P2p_core.Policy.t
(** @raise Invalid_argument on an unknown policy name (checked at
    {!of_json} time too). *)
