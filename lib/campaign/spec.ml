module Json = P2p_obs.Json
module Pieceset = P2p_pieceset.Pieceset
open P2p_core

type range = { lo : float; hi : float; steps : int }

type mode =
  | Grid of { lambda : range; us : range }
  | Refine of { lambda : float * float; us : float * float; initial : int; rounds : int }

type t = {
  name : string;
  hypothesis : string;
  k : int;
  mu : float;
  gamma : float;
  horizon : float;
  reps : int;
  master_seed : int;
  policy : string;
  backend : string;
  q : int;
  shards : int;
  faults : Faults.t;
  mode : mode;
}

let schema = "p2p-campaign-spec"
let version = 1

let policy_fun t =
  match t.policy with
  | "random" -> Policy.random_useful
  | "rarest" -> Policy.rarest_first
  | "common" -> Policy.most_common_first
  | "sequential" -> Policy.sequential
  | p -> invalid_arg (Printf.sprintf "Campaign.Spec: unknown policy %S" p)

let gamma_json g = if Float.is_finite g then Json.Float g else Json.String "inf"

let range_json { lo; hi; steps } =
  Json.Obj [ ("lo", Json.Float lo); ("hi", Json.Float hi); ("steps", Json.Int steps) ]

let mode_json = function
  | Grid { lambda; us } ->
      Json.Obj
        [ ("type", Json.String "grid"); ("lambda", range_json lambda); ("us", range_json us) ]
  | Refine { lambda = llo, lhi; us = ulo, uhi; initial; rounds } ->
      Json.Obj
        [
          ("type", Json.String "refine");
          ("lambda", Json.Obj [ ("lo", Json.Float llo); ("hi", Json.Float lhi) ]);
          ("us", Json.Obj [ ("lo", Json.Float ulo); ("hi", Json.Float uhi) ]);
          ("initial", Json.Int initial);
          ("rounds", Json.Int rounds);
        ]

let faults_json (f : Faults.t) =
  let fields = [] in
  let fields =
    if f.loss_prob > 0.0 then ("loss_prob", Json.Float f.loss_prob) :: fields else fields
  in
  let fields =
    if f.abort_rate > 0.0 then ("abort_rate", Json.Float f.abort_rate) :: fields else fields
  in
  match f.outage with
  | Some o ->
      ("seed_outage", Json.List [ Json.Float o.mean_up; Json.Float o.mean_down ]) :: fields
  | None -> fields

let to_json t =
  Json.Obj
    ([
       ("schema", Json.String schema);
       ("version", Json.Int version);
       ("name", Json.String t.name);
       ("hypothesis", Json.String t.hypothesis);
       ("k", Json.Int t.k);
       ("mu", Json.Float t.mu);
       ("gamma", gamma_json t.gamma);
       ("horizon", Json.Float t.horizon);
       ("reps", Json.Int t.reps);
       ("master_seed", Json.Int t.master_seed);
       ("policy", Json.String t.policy);
     ]
    (* The backend fields are emitted only off the default so every
       pre-existing markov spec keeps its canonical encoding — and
       therefore its hash, store and resume directory. *)
    @ (if t.backend = "markov" then []
       else [ ("backend", Json.String t.backend); ("q", Json.Int t.q) ])
    (* [shards] follows the same only-when-non-default rule: every
       pre-PR-10 spec encodes (and hashes) exactly as before. *)
    @ (if t.shards = 1 then [] else [ ("shards", Json.Int t.shards) ])
    @ faults_json t.faults
    @ [ ("mode", mode_json t.mode) ])

let hash t = Digest.to_hex (Digest.string (Json.to_string (to_json t)))

(* ---- parsing ---- *)

let ( let* ) = Result.bind

let get name json = Json.member name json

let int_field ?default name json =
  match get name json with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let float_field ?default name json =
  match get name json with
  | Some v -> (
      match Json.to_float_opt v with
      | Some f when Float.is_finite f -> Ok f
      | _ -> Error (Printf.sprintf "field %S is not a finite number" name))
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let string_field ?default name json =
  match get name json with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing field %S" name))

let gamma_field json =
  match get "gamma" json with
  | Some (Json.String ("inf" | "infinity")) -> Ok infinity
  | Some v -> (
      match Json.to_float_opt v with
      | Some f when Float.is_finite f -> Ok f
      | _ -> Error "field \"gamma\" is not a finite number or \"inf\"")
  | None -> Error "missing field \"gamma\""

let range_field name json =
  match get name json with
  | None -> Error (Printf.sprintf "missing range %S" name)
  | Some r ->
      let* lo = float_field "lo" r in
      let* hi = float_field "hi" r in
      let* steps = int_field "steps" r in
      if steps < 1 then Error (Printf.sprintf "range %S: steps < 1" name)
      else if steps > 1 && not (hi > lo) then
        Error (Printf.sprintf "range %S: hi must exceed lo" name)
      else Ok { lo; hi; steps }

let bounds_field name json =
  match get name json with
  | None -> Error (Printf.sprintf "missing range %S" name)
  | Some r ->
      let* lo = float_field "lo" r in
      let* hi = float_field "hi" r in
      if not (hi > lo) then Error (Printf.sprintf "range %S: hi must exceed lo" name)
      else Ok (lo, hi)

let mode_field json =
  match get "mode" json with
  | None -> Error "missing field \"mode\""
  | Some m -> (
      let* kind = string_field "type" m in
      match kind with
      | "grid" ->
          let* lambda = range_field "lambda" m in
          let* us = range_field "us" m in
          Ok (Grid { lambda; us })
      | "refine" ->
          let* lambda = bounds_field "lambda" m in
          let* us = bounds_field "us" m in
          let* initial = int_field "initial" m in
          let* rounds = int_field "rounds" m in
          if initial < 2 then Error "refine: initial < 2"
          else if rounds < 0 || rounds > 16 then Error "refine: rounds outside [0, 16]"
          else Ok (Refine { lambda; us; initial; rounds })
      | k -> Error (Printf.sprintf "unknown mode type %S (expected grid or refine)" k))

let faults_field json =
  let* outage =
    match get "seed_outage" json with
    | None -> Ok None
    | Some (Json.List [ up; down ]) -> (
        match (Json.to_float_opt up, Json.to_float_opt down) with
        | Some u, Some d -> Ok (Some (u, d))
        | _ -> Error "field \"seed_outage\" is not [mean_up, mean_down]")
    | Some _ -> Error "field \"seed_outage\" is not [mean_up, mean_down]"
  in
  let* abort_rate = float_field ~default:0.0 "abort_rate" json in
  let* loss_prob = float_field ~default:0.0 "loss_prob" json in
  match Faults.make ?outage ~abort_rate ~loss_prob () with
  | f -> Ok f
  | exception Invalid_argument m -> Error m

let of_json json =
  let* s = string_field "schema" json in
  if s <> schema then Error (Printf.sprintf "not a %s document (schema %S)" schema s)
  else
    let* v = int_field "version" json in
    if v <> version then Error (Printf.sprintf "unsupported spec version %d" v)
    else
      let* name = string_field "name" json in
      let* hypothesis = string_field ~default:"" "hypothesis" json in
      let* k = int_field "k" json in
      let* mu = float_field "mu" json in
      let* gamma = gamma_field json in
      let* horizon = float_field "horizon" json in
      let* reps = int_field ~default:1 "reps" json in
      let* master_seed = int_field ~default:1 "master_seed" json in
      let* policy = string_field ~default:"random" "policy" json in
      let* backend = string_field ~default:"markov" "backend" json in
      let* q = int_field ~default:16 "q" json in
      let* shards = int_field ~default:1 "shards" json in
      let* faults = faults_field json in
      let* mode = mode_field json in
      if name = "" then Error "empty campaign name"
      else if reps < 1 then Error "reps < 1"
      else if horizon <= 0.0 then Error "horizon <= 0"
      else if
        not (List.mem policy [ "random"; "rarest"; "common"; "sequential" ])
      then Error (Printf.sprintf "unknown policy %S" policy)
      else if not (List.mem backend [ "markov"; "coded" ]) then
        Error (Printf.sprintf "unknown backend %S (expected markov or coded)" backend)
      else if shards < 1 then Error "shards < 1"
      else if shards > 1 && backend <> "markov" then
        Error "shards > 1 requires the markov backend"
      else if shards > 1 && reps > 1 then
        Error "shards > 1 requires reps = 1 (shard one giant run per cell)"
      else begin
        (* Probe the parameter constructor at a representative cell so a
           bad spec fails at load time, not at cell 4000. *)
        let t =
          {
            name; hypothesis; k; mu; gamma; horizon; reps; master_seed; policy; backend; q;
            shards; faults; mode;
          }
        in
        match
          if backend = "coded" then ignore (P2p_gf.Field.gf q)
          else
            ignore (Params.make ~k ~us:1.0 ~mu ~gamma ~arrivals:[ (Pieceset.empty, 1.0) ])
        with
        | () -> Ok t
        | exception Invalid_argument m -> Error m
      end

let of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | content -> (
      match Json.of_string (String.trim content) with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> of_json json)

(* ---- cells ---- *)

type cell = { index : int; round : int; ix : int; iy : int; lambda : float; us : float }

(* The finest lattice: grid points live at stride [2^rounds] so every
   refinement midpoint is an integer coordinate. *)
let lattice_extent t =
  match t.mode with
  | Grid { lambda; us } -> (Int.max 1 (lambda.steps - 1), Int.max 1 (us.steps - 1))
  | Refine { initial; rounds; _ } ->
      let e = (initial - 1) lsl rounds in
      (e, e)

let axis_value ~lo ~hi ~extent i =
  if extent = 0 then lo else lo +. ((hi -. lo) *. float_of_int i /. float_of_int extent)

let cell_value t ~ix ~iy =
  let nx, ny = lattice_extent t in
  match t.mode with
  | Grid { lambda; us } ->
      ( axis_value ~lo:lambda.lo ~hi:lambda.hi ~extent:(if lambda.steps = 1 then 0 else nx) ix,
        axis_value ~lo:us.lo ~hi:us.hi ~extent:(if us.steps = 1 then 0 else ny) iy )
  | Refine { lambda = llo, lhi; us = ulo, uhi; _ } ->
      (axis_value ~lo:llo ~hi:lhi ~extent:nx ix, axis_value ~lo:ulo ~hi:uhi ~extent:ny iy)

let make_cell t ~index ~round ~ix ~iy =
  let lambda, us = cell_value t ~ix ~iy in
  { index; round; ix; iy; lambda; us }

let round0_cells t =
  match t.mode with
  | Grid { lambda; us } ->
      let cells = ref [] in
      let index = ref 0 in
      for i = 0 to lambda.steps - 1 do
        for j = 0 to us.steps - 1 do
          cells :=
            make_cell t ~index:!index ~round:0 ~ix:(if lambda.steps = 1 then 0 else i)
              ~iy:(if us.steps = 1 then 0 else j)
            :: !cells;
          incr index
        done
      done;
      List.rev !cells
  | Refine { initial; rounds; _ } ->
      let stride = 1 lsl rounds in
      let cells = ref [] in
      let index = ref 0 in
      for i = 0 to initial - 1 do
        for j = 0 to initial - 1 do
          cells := make_cell t ~index:!index ~round:0 ~ix:(i * stride) ~iy:(j * stride) :: !cells;
          incr index
        done
      done;
      List.rev !cells

let total_rounds t = match t.mode with Grid _ -> 0 | Refine { rounds; _ } -> rounds

let grid_total t =
  match t.mode with Grid { lambda; us } -> Some (lambda.steps * us.steps) | Refine _ -> None

(* Bisect every lattice edge of the previous round whose endpoints hold
   opposite definite verdicts.  Candidates are emitted sorted by (ix, iy)
   and deduplicated, so the sequence of cells — and hence the store — is
   a pure function of the recorded verdicts. *)
let next_round_cells t ~round ~verdicts ~next_index =
  match t.mode with
  | Grid _ -> []
  | Refine { rounds; _ } ->
      if round < 1 || round > rounds then []
      else begin
        let tbl = Hashtbl.create (List.length verdicts) in
        List.iter (fun (coord, v) -> Hashtbl.replace tbl coord v) verdicts;
        let stride = 1 lsl (rounds - round + 1) in
        let half = stride / 2 in
        let nx, ny = lattice_extent t in
        let disagree a b =
          match (Hashtbl.find_opt tbl a, Hashtbl.find_opt tbl b) with
          | Some "stable", Some "unstable" | Some "unstable", Some "stable" -> true
          | _ -> false
        in
        let candidates = ref [] in
        (* Walk the previous-round lattice (all points with coordinates
           divisible by [half] were candidates in earlier rounds; edges
           live between points at the previous stride). *)
        let ix = ref 0 in
        while !ix <= nx do
          let iy = ref 0 in
          while !iy <= ny do
            let x = !ix and y = !iy in
            if x + stride <= nx && disagree (x, y) (x + stride, y) then
              candidates := (x + half, y) :: !candidates;
            if y + stride <= ny && disagree (x, y) (x, y + stride) then
              candidates := (x, y + half) :: !candidates;
            iy := !iy + half
          done;
          ix := !ix + half
        done;
        let sorted = List.sort_uniq compare !candidates in
        let fresh = List.filter (fun c -> not (Hashtbl.mem tbl c)) sorted in
        List.mapi
          (fun i (ix, iy) -> make_cell t ~index:(next_index + i) ~round ~ix ~iy)
          fresh
      end

let cell_params t ~lambda ~us =
  Params.make ~k:t.k ~us ~mu:t.mu ~gamma:t.gamma ~arrivals:[ (Pieceset.empty, lambda) ]
