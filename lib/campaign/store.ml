module Json = P2p_obs.Json

let ( / ) = Filename.concat

let spec_path ~dir = dir / "spec.json"
let checkpoint_path ~dir = dir / "checkpoint.json"
let results_path ~dir = dir / "results.jsonl"
let active_path ~dir = dir / "active.jsonl"
let segments_dir ~dir = dir / "segments"
let quarantine_dir ~dir = dir / "quarantine"

let mkdir_p path =
  let rec aux path =
    if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
    then begin
      aux (Filename.dirname path);
      (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  aux path

type t = {
  dir : string;
  spec_hash : string;
  mutable active : out_channel;
  mutable active_records : int;  (* records in the open segment *)
  mutable sealed : int;  (* sealed segment count *)
  mutable total : int;  (* records persisted overall *)
  mutable closed : bool;
}

let segment_name n = Printf.sprintf "seg-%06d.jsonl" n

let sealed_segments ~dir =
  let d = segments_dir ~dir in
  if not (Sys.file_exists d) then []
  else
    Sys.readdir d |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".jsonl")
    |> List.sort compare
    |> List.map (fun f -> d / f)

let open_active ~dir =
  open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 (active_path ~dir)

let create ~dir ~spec_json ~spec_hash =
  mkdir_p dir;
  if Sys.file_exists (spec_path ~dir) then
    Error (Printf.sprintf "%s already holds a campaign (use resume)" dir)
  else begin
    mkdir_p (segments_dir ~dir);
    Json.write_file_atomic (spec_path ~dir) (fun oc ->
        Json.to_channel oc spec_json;
        output_char oc '\n');
    let t =
      { dir; spec_hash; active = open_active ~dir; active_records = 0;
        sealed = 0; total = 0; closed = false }
    in
    Ok t
  end

type recovery = { records : Json.t list; quarantined_bytes : int }

let read_spec ~dir =
  match Json.read_jsonl_file (spec_path ~dir) with
  | Error msg -> Error (Printf.sprintf "spec.json: %s" msg)
  | Ok { records = [ spec ]; remnant = None } -> Ok spec
  | Ok _ -> Error "spec.json: malformed (expected exactly one record)"

let read_sealed ~dir =
  let rec aux acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest -> (
        match Json.read_jsonl_file path with
        | Error msg -> Error (Printf.sprintf "%s: %s" (Filename.basename path) msg)
        | Ok { remnant = Some _; _ } ->
            Error
              (Printf.sprintf "%s: sealed segment has a torn tail"
                 (Filename.basename path))
        | Ok { records; _ } -> aux (List.rev_append records acc) rest)
  in
  aux [] (sealed_segments ~dir)

(* Read the active segment tolerantly.  A torn tail is moved to
   quarantine/ and the segment is rewritten (atomically) with only its
   intact lines, so subsequent appends extend a clean file. *)
let recover_active ~dir =
  let path = active_path ~dir in
  if not (Sys.file_exists path) then Ok ([], 0)
  else
    match Json.read_jsonl_file path with
    | Error msg -> Error (Printf.sprintf "active.jsonl: %s" msg)
    | Ok { records; remnant = None } -> Ok (records, 0)
    | Ok { records; remnant = Some tail } ->
        mkdir_p (quarantine_dir ~dir);
        let qname =
          Printf.sprintf "tear-%d-%dB.bin" (int_of_float (Unix.time ()))
            (String.length tail)
        in
        Json.write_file_atomic (quarantine_dir ~dir / qname) (fun oc ->
            output_string oc tail);
        Json.write_file_atomic path (fun oc ->
            List.iter
              (fun r ->
                Json.to_channel oc r;
                output_char oc '\n')
              records);
        Ok (records, String.length tail)

let resume ~dir =
  match read_spec ~dir with
  | Error _ as e -> e
  | Ok spec -> (
      (* spec.json holds the canonical rendering, and the parser
         round-trips field order and float bits, so re-rendering gives
         back the bytes Spec.hash digested. *)
      let spec_hash = Digest.to_hex (Digest.string (Json.to_string spec)) in
      match read_sealed ~dir with
      | Error _ as e -> e
      | Ok sealed_records -> (
          match recover_active ~dir with
          | Error _ as e -> e
          | Ok (active_records, quarantined_bytes) ->
              let sealed = List.length (sealed_segments ~dir) in
              let t =
                {
                  dir;
                  spec_hash;
                  active = open_active ~dir;
                  active_records = List.length active_records;
                  sealed;
                  total = List.length sealed_records + List.length active_records;
                  closed = false;
                }
              in
              let recovery =
                { records = sealed_records @ active_records; quarantined_bytes }
              in
              Ok (t, spec, recovery)))

let append t line =
  output_string t.active line;
  output_char t.active '\n';
  flush t.active;
  t.active_records <- t.active_records + 1;
  t.total <- t.total + 1

let records t = t.total

let seal t =
  if t.active_records > 0 then begin
    close_out t.active;
    let n = t.sealed + 1 in
    mkdir_p (segments_dir ~dir:t.dir);
    Sys.rename (active_path ~dir:t.dir) (segments_dir ~dir:t.dir / segment_name n);
    t.sealed <- n;
    t.active_records <- 0;
    t.active <- open_active ~dir:t.dir
  end

let checkpoint t ~complete ~interrupted =
  let json =
    Json.Obj
      [
        ("schema", Json.String "p2p-campaign-checkpoint");
        ("version", Json.Int 1);
        ("spec_hash", Json.String t.spec_hash);
        ("cells_done", Json.Int t.total);
        ("segments", Json.Int t.sealed);
        ("complete", Json.Bool complete);
        ("interrupted", Json.Bool interrupted);
      ]
  in
  Json.write_file_atomic (checkpoint_path ~dir:t.dir) (fun oc ->
      Json.to_channel oc json;
      output_char oc '\n')

let finalise t =
  seal t;
  let segments = sealed_segments ~dir:t.dir in
  Json.write_file_atomic (results_path ~dir:t.dir) (fun oc ->
      List.iter
        (fun path ->
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              let len = in_channel_length ic in
              output_string oc (really_input_string ic len)))
        segments);
  checkpoint t ~complete:true ~interrupted:false

let close t =
  if not t.closed then begin
    t.closed <- true;
    close_out_noerr t.active
  end

type status = {
  spec : Json.t option;
  checkpoint : Json.t option;
  store_records : Json.t list;
  segments : int;
  quarantined : int;
  complete : bool;
}

let read_one path =
  if not (Sys.file_exists path) then None
  else
    match Json.read_jsonl_file path with
    | Ok { records = r :: _; _ } -> Some r
    | _ -> None

let read_status ~dir =
  if not (Sys.file_exists (spec_path ~dir)) then
    Error (Printf.sprintf "%s: no campaign here (no spec.json)" dir)
  else
    let spec = read_one (spec_path ~dir) in
    let checkpoint = read_one (checkpoint_path ~dir) in
    let sealed =
      match read_sealed ~dir with Ok r -> r | Error _ -> []
    in
    let active =
      match
        if Sys.file_exists (active_path ~dir) then
          Json.read_jsonl_file (active_path ~dir)
        else Ok { Json.records = []; remnant = None }
      with
      | Ok { Json.records; _ } -> records
      | Error _ -> []
    in
    let quarantined =
      let d = quarantine_dir ~dir in
      if Sys.file_exists d then Array.length (Sys.readdir d) else 0
    in
    Ok
      {
        spec;
        checkpoint;
        store_records = sealed @ active;
        segments = List.length (sealed_segments ~dir);
        quarantined;
        complete = Sys.file_exists (results_path ~dir);
      }
