(** Crash-safe JSONL result store with segment rotation.

    On-disk layout of a campaign directory:

    {v
    DIR/
      spec.json                 the spec (atomic write, never rewritten)
      checkpoint.json           progress snapshot (atomic write, replaced)
      segments/seg-000001.jsonl sealed segments (atomic rename, immutable)
      active.jsonl              the open segment (append + flush per record)
      quarantine/tear-*.bin     torn tails recovered at resume
      results.jsonl             the merged store, written at completion
    v}

    The write discipline that makes SIGKILL at any instant recoverable:

    - every record is one line, appended and flushed before the cell is
      considered done;
    - a {e seal} atomically renames the active segment into [segments/];
      sealed segments are never written again;
    - [checkpoint.json] and [results.jsonl] only ever appear via
      write-tmp-then-rename, so they are complete or absent, never torn;
    - at {!resume}, sealed segments are trusted, and the active segment
      is read with the tolerant JSONL reader: a torn trailing line is
      moved to [quarantine/] and its cell re-runs, which — cells being
      deterministic — reproduces the identical bytes.

    The store deals in pre-rendered record {e lines} (strings), so the
    merged [results.jsonl] is the exact concatenation of what was
    appended, independent of where seals and crashes landed: an
    interrupted-and-resumed campaign is byte-identical to an
    uninterrupted one. *)

module Json = P2p_obs.Json

type t

val create : dir:string -> spec_json:Json.t -> spec_hash:string -> (t, string) result
(** Initialise a fresh campaign directory (created if missing; must not
    already contain campaign state). *)

type recovery = {
  records : Json.t list;  (** every intact record, in append order *)
  quarantined_bytes : int;  (** size of the torn tail moved aside; 0 = clean *)
}

val resume : dir:string -> (t * Json.t * recovery, string) result
(** Reopen an existing campaign directory: returns the store, the spec
    document, and the recovered records.  Fails if the directory holds
    no campaign, a sealed segment is corrupt, or an interior record of
    the active segment is malformed. *)

val append : t -> string -> unit
(** Append one record line (newline added) to the active segment and
    flush it. *)

val records : t -> int
(** Records persisted so far (recovered + appended). *)

val seal : t -> unit
(** Rotate a non-empty active segment into [segments/] (atomic rename)
    and open a fresh one. *)

val checkpoint : t -> complete:bool -> interrupted:bool -> unit
(** Atomically replace [checkpoint.json] with the current progress. *)

val finalise : t -> unit
(** Seal the active segment, merge every sealed segment into
    [results.jsonl] (atomic write), and checkpoint as complete. *)

val close : t -> unit

(** {1 Read-only inspection} *)

type status = {
  spec : Json.t option;
  checkpoint : Json.t option;
  store_records : Json.t list;
  segments : int;
  quarantined : int;  (** quarantined tear files present *)
  complete : bool;  (** [results.jsonl] exists *)
}

val read_status : dir:string -> (status, string) result
(** Inspect a campaign directory without touching it (safe on a live or
    dead campaign; the active segment is read tolerantly). *)

val results_path : dir:string -> string
val spec_path : dir:string -> string
