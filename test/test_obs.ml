(* Telemetry layer: JSON round trips, dead-cell instruments, trace
   formats, probe sample construction, and the two determinism
   guarantees the observability PR pins — a probed run is bit-identical
   to an unprobed one, and probe series are bit-identical across any
   [--jobs] count because they sample on the simulation clock. *)

open P2p_core

(* aliased after [open P2p_core] on purpose: the core library has its own
   [Metrics] (summary metrics), and here the telemetry one must win *)
module Rng = P2p_prng.Rng
module Json = P2p_obs.Json
module Metrics = P2p_obs.Metrics
module Clock = P2p_obs.Clock
module Hist = P2p_obs.Hist
module Recorder = P2p_obs.Recorder
module Monitor = P2p_obs.Monitor
module Trace = P2p_obs.Trace
module Profile = P2p_obs.Profile
module Probe = P2p_obs.Probe
module Series = P2p_obs.Series
module Progress = P2p_obs.Progress
module Pieceset = P2p_pieceset.Pieceset

let params = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:0.8 ~mu:1.0 ~gamma:2.0

let with_temp_file f =
  let path = Filename.temp_file "p2p_obs_test" ".tmp" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lines_of s =
  String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")

(* ---- Json ---- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("int", Json.Int 42);
        ("neg", Json.Int (-7));
        ("bool", Json.Bool true);
        ("null", Json.Null);
        ("str", Json.String "a \"quoted\"\n\tbackslash \\ control \x01");
        ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.String "x" ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []); ("empty_obj", Json.Obj []) ]);
      ]
  in
  Alcotest.(check bool) "roundtrip structural" true (Json.of_string_exn (Json.to_string v) = v)

let test_json_float_bit_exact () =
  List.iter
    (fun x ->
      match Json.to_float_opt (Json.of_string_exn (Json.to_string (Json.Float x))) with
      | Some y ->
          Alcotest.(check bool)
            (Printf.sprintf "%h survives" x)
            true
            (Int64.bits_of_float x = Int64.bits_of_float y)
      | None -> Alcotest.failf "%h did not parse back to a number" x)
    [ 0.1 +. 0.2; 1.0 /. 3.0; 1e-300; 1.7976931348623157e308; -0.0; 3.5017060493169474 ]

let test_json_nonfinite_as_null () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf is null" "null" (Json.to_string (Json.Float infinity));
  (* and the reader's convention maps null back to nan *)
  match Json.to_float_opt (Json.of_string_exn "null") with
  | Some x -> Alcotest.(check bool) "null reads as nan" true (Float.is_nan x)
  | None -> Alcotest.fail "null should read as a float"

let test_json_parse_errors () =
  let rejects name s =
    match Json.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: %S should not parse" name s
  in
  rejects "garbage" "notjson";
  rejects "trailing content" "{} {}";
  rejects "unterminated string" "\"abc";
  rejects "bare comma" "[1,]";
  rejects "missing colon" "{\"a\" 1}";
  rejects "empty input" ""

let test_json_accessors () =
  let v = Json.of_string_exn {|{"a": 1, "b": [true, null], "c": "s"}|} in
  Alcotest.(check (option int)) "member a" (Some 1) (Option.bind (Json.member "a" v) Json.to_int_opt);
  Alcotest.(check bool) "missing member" true (Json.member "zzz" v = None);
  Alcotest.(check (option string))
    "member c" (Some "s")
    (Option.bind (Json.member "c" v) Json.to_string_opt);
  match Option.bind (Json.member "b" v) Json.to_list_opt with
  | Some [ Json.Bool true; Json.Null ] -> ()
  | _ -> Alcotest.fail "member b should be [true, null]"

(* ---- Metrics ---- *)

let test_metrics_disabled_dead () =
  let r = Metrics.disabled in
  Alcotest.(check bool) "disabled not enabled" false (Metrics.enabled r);
  let c = Metrics.counter r "events" in
  Metrics.incr c;
  Metrics.add c 100;
  Alcotest.(check int) "dead counter stays 0" 0 (Metrics.counter_value c);
  let g = Metrics.gauge r "n" in
  Metrics.set g 7.0;
  Alcotest.(check (float 0.0)) "dead gauge stays 0" 0.0 (Metrics.gauge_value g);
  let t = Metrics.timer r "loop" in
  let x = Metrics.time t (fun () -> 41 + 1) in
  Alcotest.(check int) "dead timer still runs the thunk" 42 x;
  Alcotest.(check int) "dead timer count 0" 0 (Metrics.timer_count t)

let test_metrics_enabled () =
  let r = Metrics.create () in
  Alcotest.(check bool) "enabled" true (Metrics.enabled r);
  let c = Metrics.counter r "events" in
  Metrics.incr c;
  Metrics.add c 10;
  Alcotest.(check int) "counter 11" 11 (Metrics.counter_value c);
  let c' = Metrics.counter r "events" in
  Metrics.incr c';
  Alcotest.(check int) "re-fetch shares the cell" 12 (Metrics.counter_value c);
  let g = Metrics.gauge r "n" in
  Metrics.set g 3.5;
  Alcotest.(check (float 0.0)) "gauge holds last set" 3.5 (Metrics.gauge_value g);
  let t = Metrics.timer r "loop" in
  ignore (Metrics.time t (fun () -> Sys.opaque_identity ()));
  ignore (Metrics.time t (fun () -> Sys.opaque_identity ()));
  Alcotest.(check int) "timer entered twice" 2 (Metrics.timer_count t);
  Alcotest.(check bool) "timer total nonnegative" true (Metrics.timer_total_s t >= 0.0);
  (* registering the same name as a different kind is a bug, not a merge *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"events\" registered as a different kind") (fun () ->
      ignore (Metrics.gauge r "events"))

let test_metrics_to_json () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r "transfers") 3;
  Metrics.set (Metrics.gauge r "final_n") 9.0;
  match Metrics.to_json r with
  | Json.Obj kvs ->
      Alcotest.(check (option int))
        "counter serialised" (Some 3)
        (Option.bind (List.assoc_opt "transfers" kvs) Json.to_int_opt);
      Alcotest.(check bool) "keys sorted" true (List.map fst kvs = List.sort compare (List.map fst kvs))
  | _ -> Alcotest.fail "to_json should be an object"

(* ---- Trace ---- *)

let test_trace_jsonl () =
  with_temp_file (fun path ->
      let tr = Trace.to_file path in
      Alcotest.(check bool) "enabled" true (Trace.enabled tr);
      Trace.emit tr ~time:1.5 ~name:"arrival" ~args:[ ("pieces", Json.Int 0) ];
      Trace.emit tr ~time:2.0 ~name:"transfer" ~args:[ ("piece", Json.Int 2) ];
      Trace.close tr;
      Trace.close tr;
      (* idempotent *)
      Alcotest.(check int) "events_written" 2 (Trace.events_written tr);
      let lines = lines_of (read_file path) in
      Alcotest.(check int) "one line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          let v = Json.of_string_exn line in
          Alcotest.(check bool) "has t" true (Json.member "t" v <> None);
          Alcotest.(check bool) "has ev" true (Json.member "ev" v <> None))
        lines)

let test_trace_chrome () =
  let path = Filename.temp_file "p2p_obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let tr = Trace.to_file path in
      Trace.emit tr ~time:0.5 ~name:"arrival" ~args:[];
      Trace.emit_span tr ~start:0.0 ~dur:1.0 ~name:"event-loop";
      Trace.close tr;
      (* the whole file must be one valid JSON array (chrome://tracing) *)
      match Json.of_string_exn (read_file path) with
      | Json.List entries ->
          Alcotest.(check int) "array length = events written" (Trace.events_written tr)
            (List.length entries);
          let phs =
            List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.to_string_opt) entries
          in
          Alcotest.(check bool) "instant event present" true (List.mem "i" phs);
          Alcotest.(check bool) "span event present" true (List.mem "X" phs);
          let ts =
            List.filter_map (fun e -> Option.bind (Json.member "ts" e) Json.to_float_opt) entries
          in
          (* sim time 0.5 s -> 5e5 microseconds *)
          Alcotest.(check bool) "ts in microseconds" true (List.mem 500000.0 ts)
      | _ -> Alcotest.fail "chrome trace should parse as a JSON array")

let test_trace_null_sink () =
  Alcotest.(check bool) "null disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null ~time:0.0 ~name:"x" ~args:[];
  Trace.close Trace.null;
  Alcotest.(check int) "null counts nothing" 0 (Trace.events_written Trace.null)

(* ---- Probe ---- *)

let test_probe_none_is_inert () =
  Alcotest.(check bool) "none does not trace" false Probe.none.Probe.tracing;
  Alcotest.(check bool) "none does not sample" false (Probe.sampling Probe.none);
  (* calling the hooks anyway is harmless *)
  Probe.event Probe.none ~time:1.0 (Probe.Transfer_lost);
  Probe.none.Probe.on_sample
    (Probe.sample ~time:0.0 ~k:2 ~n:0 ~count_of:(fun _ -> 0) ~piece_counts:[| 0; 0 |])

let test_probe_make_validation () =
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "interval %f rejected" bad)
        true
        (try
           ignore (Probe.make ~interval:bad ());
           false
         with Invalid_argument _ -> true))
    [ 0.0; -1.0; nan ];
  let p = Probe.make ~on_event:(fun ~time:_ _ -> ()) () in
  Alcotest.(check bool) "on_event implies tracing" true p.Probe.tracing;
  Alcotest.(check bool) "no interval means no sampling" false (Probe.sampling p);
  let q = Probe.make ~interval:2.0 () in
  Alcotest.(check bool) "interval means sampling" true (Probe.sampling q);
  Alcotest.(check bool) "no on_event means no tracing" false q.Probe.tracing

let test_probe_sample_construction () =
  (* A hand-built swarm with k = 3: piece 1 is rarest; the one-club is
     whoever holds exactly {0, 2} = full \ {rarest}. *)
  let k = 3 in
  let one_club_set = Pieceset.remove 1 (Pieceset.full ~k) in
  let count_of s =
    if s = Pieceset.full ~k then 2 (* peer seeds *)
    else if s = one_club_set then 5
    else 0
  in
  let s =
    Probe.sample ~time:7.0 ~k ~n:11 ~count_of ~piece_counts:[| 9; 4; 9 |]
  in
  Alcotest.(check int) "n" 11 s.Probe.n;
  Alcotest.(check int) "seeds counted from full set" 2 s.Probe.seeds;
  Alcotest.(check int) "rarest piece is argmin" 1 s.Probe.rarest_piece;
  Alcotest.(check int) "rarest count" 4 s.Probe.rarest_count;
  Alcotest.(check int) "one-club counted against the rarest piece" 5 s.Probe.one_club;
  (* ties break to the lowest index *)
  let s' = Probe.sample ~time:0.0 ~k ~n:0 ~count_of:(fun _ -> 0) ~piece_counts:[| 3; 3; 3 |] in
  Alcotest.(check int) "tie goes to lowest piece" 0 s'.Probe.rarest_piece

let test_probe_event_names () =
  let named ev = Probe.event_name ev in
  Alcotest.(check string) "arrival" "arrival" (named (Probe.Arrival { pieces = Pieceset.empty }));
  Alcotest.(check string) "seed toggle" "seed_toggle" (named (Probe.Seed_toggle { up = false }));
  (* every event's args serialise *)
  List.iter
    (fun ev -> ignore (Json.to_string (Json.Obj (Probe.event_args ev))))
    [
      Probe.Arrival { pieces = Pieceset.singleton 0 };
      Probe.Contact { seed = true; useful = false };
      Probe.Transfer { piece = 1; completed = true };
      Probe.Transfer_lost;
      Probe.Departure { kind = Probe.Completed };
      Probe.Departure { kind = Probe.Aborted };
      Probe.Departure { kind = Probe.Seed_departed };
      Probe.Seed_toggle { up = true };
    ]

(* ---- probes attached to the simulators ---- *)

let faulty_config_markov () =
  {
    (Sim_markov.default_config params) with
    Sim_markov.faults = Faults.make ~outage:(20.0, 5.0) ~abort_rate:0.02 ~loss_prob:0.05 ();
  }

let faulty_config_agent () =
  {
    (Sim_agent.default_config params) with
    Sim_agent.faults = Faults.make ~outage:(20.0, 5.0) ~abort_rate:0.02 ~loss_prob:0.05 ();
  }

let busy_probe () =
  (* listens to everything, into throwaway sinks *)
  let series = Series.create ~k:3 in
  let events = ref 0 in
  ( Probe.make ~interval:7.0
      ~on_event:(fun ~time:_ _ -> incr events)
      ~on_sample:(Series.record series)
      ~profile:(Profile.create ()) (),
    events )

let check_markov_stats_equal name (a : Sim_markov.stats) (b : Sim_markov.stats) =
  Alcotest.(check int) (name ^ " events") a.Sim_markov.events b.Sim_markov.events;
  Alcotest.(check int) (name ^ " arrivals") a.Sim_markov.arrivals b.Sim_markov.arrivals;
  Alcotest.(check int) (name ^ " transfers") a.Sim_markov.transfers b.Sim_markov.transfers;
  Alcotest.(check int) (name ^ " departures") a.Sim_markov.departures b.Sim_markov.departures;
  Alcotest.(check int) (name ^ " final_n") a.Sim_markov.final_n b.Sim_markov.final_n;
  Alcotest.(check int) (name ^ " aborted") a.Sim_markov.aborted_peers b.Sim_markov.aborted_peers;
  Alcotest.(check int) (name ^ " lost") a.Sim_markov.lost_transfers b.Sim_markov.lost_transfers;
  Alcotest.(check bool)
    (name ^ " time_avg_n bit-identical")
    true
    (Int64.bits_of_float a.Sim_markov.time_avg_n = Int64.bits_of_float b.Sim_markov.time_avg_n);
  Alcotest.(check bool)
    (name ^ " outage_time bit-identical")
    true
    (Int64.bits_of_float a.Sim_markov.outage_time = Int64.bits_of_float b.Sim_markov.outage_time);
  Alcotest.(check bool) (name ^ " sample grid") true (a.Sim_markov.samples = b.Sim_markov.samples)

let test_markov_probe_bit_identity () =
  let config = faulty_config_markov () in
  let bare, _ = Sim_markov.run_seeded ~seed:77 config ~horizon:250.0 in
  let probe, events = busy_probe () in
  let probed, _ = Sim_markov.run_seeded ~probe ~seed:77 config ~horizon:250.0 in
  check_markov_stats_equal "markov" bare probed;
  Alcotest.(check bool) "the probe actually saw traffic" true (!events > 0)

let test_agent_probe_bit_identity () =
  let config = faulty_config_agent () in
  let bare, _ = Sim_agent.run_seeded ~seed:77 config ~horizon:250.0 in
  let probe, events = busy_probe () in
  let probed, _ = Sim_agent.run_seeded ~probe ~seed:77 config ~horizon:250.0 in
  Alcotest.(check int) "agent events" bare.Sim_agent.events probed.Sim_agent.events;
  Alcotest.(check int) "agent transfers" bare.Sim_agent.transfers probed.Sim_agent.transfers;
  Alcotest.(check int) "agent departures" bare.Sim_agent.departures probed.Sim_agent.departures;
  Alcotest.(check int) "agent final_n" bare.Sim_agent.final_n probed.Sim_agent.final_n;
  Alcotest.(check bool)
    "agent time_avg_n bit-identical" true
    (Int64.bits_of_float bare.Sim_agent.time_avg_n
    = Int64.bits_of_float probed.Sim_agent.time_avg_n);
  Alcotest.(check bool)
    "agent mean_sojourn bit-identical" true
    (Int64.bits_of_float bare.Sim_agent.mean_sojourn
    = Int64.bits_of_float probed.Sim_agent.mean_sojourn);
  Alcotest.(check bool) "agent sample grid" true (bare.Sim_agent.samples = probed.Sim_agent.samples);
  Alcotest.(check bool) "the probe actually saw traffic" true (!events > 0)

let probe_times ~run ~interval =
  let times = ref [] in
  let probe = Probe.make ~interval ~on_sample:(fun s -> times := s.Probe.time :: !times) () in
  run ~probe;
  List.rev !times

let test_probe_grid_is_sim_time () =
  (* interval 5 over horizon 50: exactly the 11 grid points 0, 5, .., 50,
     exact floats — no wall-clock jitter, no drift *)
  let config = Sim_markov.default_config params in
  let expect = List.init 11 (fun i -> 5.0 *. float_of_int i) in
  let times =
    probe_times
      ~run:(fun ~probe -> ignore (Sim_markov.run_seeded ~probe ~seed:5 config ~horizon:50.0))
      ~interval:5.0
  in
  Alcotest.(check (list (float 0.0))) "markov grid" expect times;
  let config_a = Sim_agent.default_config params in
  let times_a =
    probe_times
      ~run:(fun ~probe -> ignore (Sim_agent.run_seeded ~probe ~seed:5 config_a ~horizon:50.0))
      ~interval:5.0
  in
  Alcotest.(check (list (float 0.0))) "agent grid" expect times_a

let test_probe_interval_longer_than_run () =
  (* satellite (c): one sample at t = 0 and nothing else *)
  let config = Sim_markov.default_config params in
  let times =
    probe_times
      ~run:(fun ~probe -> ignore (Sim_markov.run_seeded ~probe ~seed:5 config ~horizon:10.0))
      ~interval:100.0
  in
  Alcotest.(check (list (float 0.0))) "single t=0 sample" [ 0.0 ] times

let collect_series ~seed ~horizon ~interval =
  let series = Series.create ~k:3 in
  let probe = Probe.make ~interval ~on_sample:(Series.record series) () in
  ignore (Sim_markov.run_seeded ~probe ~seed (faulty_config_markov ()) ~horizon);
  Series.close series ~time:horizon;
  series

let test_probe_samples_deterministic () =
  let a = collect_series ~seed:2024 ~horizon:120.0 ~interval:3.0 in
  let b = collect_series ~seed:2024 ~horizon:120.0 ~interval:3.0 in
  Alcotest.(check bool) "sample arrays identical" true (Series.samples a = Series.samples b);
  Alcotest.(check bool)
    "time averages bit-identical" true
    (Int64.bits_of_float (Series.avg_n a) = Int64.bits_of_float (Series.avg_n b))

(* ---- Series ---- *)

let mk_sample ~time ~n ~club ~pieces =
  Probe.
    {
      time;
      n;
      seeds = 0;
      one_club = club;
      rarest_piece = 0;
      rarest_count = pieces.(0);
      piece_counts = pieces;
    }

let test_series_averages () =
  Alcotest.check_raises "k < 1 rejected" (Invalid_argument "Series.create: k < 1") (fun () ->
      ignore (Series.create ~k:0));
  let s = Series.create ~k:2 in
  Alcotest.(check bool) "avg before time elapses is nan" true (Float.is_nan (Series.avg_n s));
  Series.record s (mk_sample ~time:0.0 ~n:2 ~club:0 ~pieces:[| 1; 1 |]);
  Series.record s (mk_sample ~time:10.0 ~n:6 ~club:4 ~pieces:[| 1; 5 |]);
  Series.close s ~time:20.0;
  (* n: 2 for 10 time units then 6 for 10 -> 4.0; club: 0 then 4 -> 2.0 *)
  Alcotest.(check (float 1e-12)) "time-weighted avg n" 4.0 (Series.avg_n s);
  Alcotest.(check (float 1e-12)) "time-weighted avg one-club" 2.0 (Series.avg_one_club s);
  Alcotest.(check (float 1e-12)) "per-piece avg" 3.0 (Series.avg_piece s 1);
  Alcotest.(check int) "count" 2 (Series.count s);
  Alcotest.(check bool)
    "one-club series" true
    (Series.one_club_series s = [| (0.0, 0); (10.0, 4) |]);
  Alcotest.(check bool)
    "population series" true
    (Series.population_series s = [| (0.0, 2); (10.0, 6) |])

let test_series_file_roundtrip () =
  let s = collect_series ~seed:99 ~horizon:150.0 ~interval:5.0 in
  with_temp_file (fun path ->
      let oc = open_out path in
      Series.write s oc;
      close_out oc;
      match Series.read_file path with
      | Error msg -> Alcotest.failf "read_file failed: %s" msg
      | Ok s' ->
          Alcotest.(check int) "k preserved" (Series.k s) (Series.k s');
          Alcotest.(check int) "count preserved" (Series.count s) (Series.count s');
          Alcotest.(check bool) "samples preserved" true (Series.samples s = Series.samples s');
          (* the reader closes at the last sample time, not the writer's
             horizon; re-close at the horizon and the averages agree *)
          Series.close s' ~time:150.0;
          Alcotest.(check bool)
            "avg_n bit-identical after re-close" true
            (Int64.bits_of_float (Series.avg_n s) = Int64.bits_of_float (Series.avg_n s')))

let test_series_read_rejects_garbage () =
  let rejects name content =
    with_temp_file (fun path ->
        let oc = open_out path in
        output_string oc content;
        close_out oc;
        match Series.read_file path with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s should not parse as a probe series" name)
  in
  rejects "empty file" "";
  rejects "wrong schema" "{\"schema\": \"not-a-probe\", \"version\": 1, \"k\": 3}\n";
  rejects "missing header" "{\"t\": 0, \"n\": 1}\n";
  rejects "malformed sample line"
    "{\"schema\": \"p2p-swarm-probe\", \"version\": 1, \"k\": 3}\nnot json\n"

(* ---- jobs-independence of per-replication probe series (satellite b) ---- *)

let probe_sweep ~jobs =
  let module Runner = P2p_runner.Runner in
  let results, _ =
    Runner.run_map ~jobs ~chunk:2 ~master_seed:424242 ~replications:6 (fun ~rng ~index:_ ->
        let series = Series.create ~k:3 in
        let probe = Probe.make ~interval:4.0 ~on_sample:(Series.record series) () in
        let stats, _ = Sim_markov.run ~probe ~rng (faulty_config_markov ()) ~horizon:100.0 in
        Series.close series ~time:100.0;
        (stats.Sim_markov.events, Series.samples series, Series.avg_n series))
  in
  Array.map Option.get results

let test_probe_series_jobs_independent () =
  let seq = probe_sweep ~jobs:1 in
  let par = probe_sweep ~jobs:4 in
  Alcotest.(check int) "same replication count" (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (ev_s, samples_s, avg_s) ->
      let ev_p, samples_p, avg_p = par.(i) in
      Alcotest.(check int) (Printf.sprintf "rep %d events" i) ev_s ev_p;
      Alcotest.(check bool) (Printf.sprintf "rep %d probe samples" i) true (samples_s = samples_p);
      Alcotest.(check bool)
        (Printf.sprintf "rep %d avg_n bit-identical" i)
        true
        (Int64.bits_of_float avg_s = Int64.bits_of_float avg_p))
    seq

(* ---- Progress ---- *)

let test_progress_silent () =
  Alcotest.(check bool) "silent disabled" false (Progress.enabled Progress.silent);
  Progress.step Progress.silent;
  Progress.add_events Progress.silent 1000;
  Progress.finish Progress.silent;
  Alcotest.(check int) "silent counts nothing" 0 (Progress.done_count Progress.silent);
  Alcotest.(check int) "silent events zero" 0 (Progress.events_total Progress.silent)

let test_progress_counters_and_final_line () =
  Alcotest.(check bool) "negative total rejected" true
    (try
       ignore (Progress.create ~total:(-1) ());
       false
     with Invalid_argument _ -> true);
  with_temp_file (fun path ->
      let oc = open_out path in
      let p = Progress.create ~out:oc ~min_interval_s:0.0 ~total:3 () in
      Alcotest.(check bool) "enabled" true (Progress.enabled p);
      for _ = 1 to 3 do
        Progress.step p;
        Progress.add_events p 500
      done;
      Progress.finish p;
      Progress.finish p;
      (* the final line prints once *)
      close_out oc;
      Alcotest.(check int) "done count" 3 (Progress.done_count p);
      Alcotest.(check int) "events total" 1500 (Progress.events_total p);
      let out = read_file path in
      Alcotest.(check bool) "reports 3/3" true
        (let rec contains i =
           i + 3 <= String.length out && (String.sub out i 3 = "3/3" || contains (i + 1))
         in
         contains 0);
      (* exactly one final 100% line *)
      let finals =
        List.length
          (List.filter
             (fun l ->
               let rec contains i =
                 i + 6 <= String.length l && (String.sub l i 6 = "(100%)" || contains (i + 1))
               in
               contains 0)
             (lines_of out))
      in
      Alcotest.(check int) "single final line" 1 finals)

(* ---- tolerant JSONL + atomic writes (the crash-safety primitives) ---- *)

let sample_jsonl = "{\"cell\":0,\"v\":1.5}\n{\"cell\":1,\"v\":-2.0}\n{\"cell\":2,\"v\":0.25}\n"

(* Truncation at EVERY byte offset of a valid stream must parse: the
   complete lines come back as records and the torn tail as a remnant —
   never an error, never a parsed partial record. *)
let test_jsonl_truncation_at_every_offset () =
  let full = sample_jsonl in
  let newline_positions =
    List.filter (fun i -> full.[i] = '\n') (List.init (String.length full) Fun.id)
  in
  for cut = 0 to String.length full do
    let prefix = String.sub full 0 cut in
    match Json.jsonl_of_string prefix with
    | Error msg -> Alcotest.failf "cut at %d rejected: %s" cut msg
    | Ok { records; remnant } ->
        let complete = List.length (List.filter (fun nl -> nl < cut) newline_positions) in
        Alcotest.(check int)
          (Printf.sprintf "records at cut %d" cut)
          complete (List.length records);
        let last_nl =
          List.fold_left (fun acc nl -> if nl < cut then nl + 1 else acc) 0 newline_positions
        in
        let expected_remnant =
          if cut = last_nl then None else Some (String.sub full last_nl (cut - last_nl))
        in
        Alcotest.(check (option string))
          (Printf.sprintf "remnant at cut %d" cut)
          expected_remnant remnant
  done

(* A torn tail that happens to be valid JSON is still a remnant: a tear
   can truncate a record to a shorter valid one, so trailing bytes
   without a newline are never trusted. *)
let test_jsonl_valid_looking_tail_is_remnant () =
  match Json.jsonl_of_string "{\"cell\":0}\n{\"cell\":1}" with
  | Error msg -> Alcotest.fail msg
  | Ok { records; remnant } ->
      Alcotest.(check int) "one complete record" 1 (List.length records);
      Alcotest.(check (option string)) "tail quarantined" (Some "{\"cell\":1}") remnant

let test_jsonl_interior_corruption_is_error () =
  match Json.jsonl_of_string "{\"cell\":0}\nnot json at all\n{\"cell\":2}\n" with
  | Ok _ -> Alcotest.fail "interior corruption accepted"
  | Error msg ->
      Alcotest.(check bool) "error names the line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 2:")

let test_jsonl_blank_lines_skipped () =
  match Json.jsonl_of_string "{\"a\":1}\n\n  \n{\"a\":2}\n" with
  | Error msg -> Alcotest.fail msg
  | Ok { records; remnant } ->
      Alcotest.(check int) "two records" 2 (List.length records);
      Alcotest.(check (option string)) "no remnant" None remnant

let test_write_file_atomic_basic () =
  with_temp_file (fun path ->
      let r = Json.write_file_atomic path (fun oc -> output_string oc "first"; 42) in
      Alcotest.(check int) "writer result returned" 42 r;
      Alcotest.(check string) "content written" "first" (read_file path);
      ignore (Json.write_file_atomic path (fun oc -> output_string oc "second"));
      Alcotest.(check string) "content replaced" "second" (read_file path))

let test_write_file_atomic_writer_raise_leaves_target () =
  with_temp_file (fun path ->
      ignore (Json.write_file_atomic path (fun oc -> output_string oc "keep me"));
      (try
         Json.write_file_atomic path (fun oc ->
             output_string oc "torn prefix that must never land";
             failwith "boom")
       with Failure _ -> ());
      Alcotest.(check string) "target untouched after writer raise" "keep me" (read_file path);
      (* and the temporary is cleaned up *)
      let dir = Filename.dirname path and base = Filename.basename path in
      let leftovers =
        Array.to_list (Sys.readdir dir)
        |> List.filter (fun f ->
               String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no tmp leftovers" [] leftovers)

let test_read_jsonl_file_roundtrip () =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc sample_jsonl;
      (* plus a torn tail *)
      output_string oc "{\"cell\":3,\"v\":0.";
      close_out oc;
      match Json.read_jsonl_file path with
      | Error msg -> Alcotest.fail msg
      | Ok { records; remnant } ->
          Alcotest.(check int) "three records" 3 (List.length records);
          Alcotest.(check (option string)) "torn tail" (Some "{\"cell\":3,\"v\":0.") remnant)

(* ---- Profile ---- *)

let test_profile_disabled () =
  Alcotest.(check bool) "disabled" false (Profile.enabled Profile.disabled);
  let span = Profile.start Profile.disabled "phase" in
  Profile.stop span;
  Profile.record_s Profile.disabled "phase" 1.0;
  Alcotest.(check bool) "no phases recorded" true (Profile.phases Profile.disabled = []);
  Alcotest.(check (float 0.0)) "total zero" 0.0 (Profile.total_s Profile.disabled)

let test_profile_phases () =
  let p = Profile.create () in
  Profile.time p "setup" (fun () -> ());
  Profile.time p "event-loop" (fun () -> ());
  Profile.time p "event-loop" (fun () -> ());
  Profile.record_s p "finalise" 0.25;
  let phases = Profile.phases p in
  Alcotest.(check (list string))
    "phases sorted by name"
    [ "event-loop"; "finalise"; "setup" ]
    (List.map fst phases);
  let _, (loop_s, loop_n) = List.nth phases 0 in
  Alcotest.(check int) "event-loop entered twice" 2 loop_n;
  Alcotest.(check bool) "durations nonnegative" true (loop_s >= 0.0);
  let _, (fin_s, _) = List.nth phases 1 in
  Alcotest.(check (float 1e-12)) "record_s credits directly" 0.25 fin_s;
  Alcotest.(check bool) "total covers the direct credit" true (Profile.total_s p >= 0.25);
  (* exception safety: the span still closes *)
  (try Profile.time p "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "phase recorded despite raise" true
    (List.mem_assoc "boom" (Profile.phases p));
  match Profile.to_json p with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "to_json should be an object"

(* ---- monotonic clock ---- *)

let test_clock_nondecreasing () =
  let violations = ref 0 in
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if Int64.compare t !prev < 0 then incr violations;
    prev := t
  done;
  Alcotest.(check int) "now_ns never runs backwards" 0 !violations;
  let s0 = Clock.now_s () in
  let s1 = Clock.now_s () in
  Alcotest.(check bool) "now_s differences nonnegative" true (s1 -. s0 >= 0.0)

(* ---- log2 histograms ---- *)

let test_hist_bucket_bounds () =
  let h = Hist.create () in
  Hist.record h 1.0 (* the grid anchor: 1 s = bucket 32 *);
  Hist.record h 1e-9 (* 1 ns: [2^-30, 2^-29) = bucket 2 *);
  Hist.record h (Float.ldexp 1.0 (-31)) (* exact lower edge of bucket 1 *);
  Hist.record h 0.0;
  Hist.record h (-3.0);
  Hist.record h 1e-300 (* below 2^-31: tail bucket 0 *);
  Hist.record h 1e12 (* above 2^31: tail bucket 63 *);
  Hist.record h infinity;
  let b = Hist.buckets h in
  Alcotest.(check int) "1.0 in bucket 32" 1 b.(32);
  Alcotest.(check int) "1 ns in bucket 2" 1 b.(2);
  Alcotest.(check int) "2^-31 in bucket 1" 1 b.(1);
  Alcotest.(check int) "bucket 0 absorbs nonpositive and tiny" 3 b.(0);
  Alcotest.(check int) "bucket 63 absorbs huge" 2 b.(63);
  Alcotest.(check int) "count covers every record" 8 (Hist.count h);
  Alcotest.(check bool) "min tracked through the junk" true (Hist.min_value h = -3.0);
  Alcotest.(check (float 0.0)) "bucket 32 lower edge is 1.0" 1.0 (Hist.bucket_lower_bound 32);
  Alcotest.(check bool)
    "quantiles ride the bucket edges monotonically" true
    (Hist.quantile h 0.0 <= Hist.quantile h 0.5 && Hist.quantile h 0.5 <= Hist.quantile h 1.0)

let random_hist seed n =
  let rng = Rng.of_seed seed in
  let h = Hist.create () in
  for _ = 1 to n do
    Hist.record h (Float.ldexp (Rng.float rng) (Rng.int_below rng 40 - 20))
  done;
  h

(* Integral-part equality: buckets, count, min/max.  The running [sum]
   is a float accumulator, associative only up to rounding, so it gets
   a tolerance instead. *)
let check_hist_equal name a b =
  Alcotest.(check (array int)) (name ^ " buckets") (Hist.buckets a) (Hist.buckets b);
  Alcotest.(check int) (name ^ " count") (Hist.count a) (Hist.count b);
  Alcotest.(check bool)
    (name ^ " min") true
    (Int64.bits_of_float (Hist.min_value a) = Int64.bits_of_float (Hist.min_value b));
  Alcotest.(check bool)
    (name ^ " max") true
    (Int64.bits_of_float (Hist.max_value a) = Int64.bits_of_float (Hist.max_value b));
  Alcotest.(check bool)
    (name ^ " sum within rounding") true
    (let sa = Hist.sum a and sb = Hist.sum b in
     Float.abs (sa -. sb) <= 1e-9 *. Float.max 1.0 (Float.abs sa))

let test_hist_merge_laws () =
  let a = random_hist 1 500 and b = random_hist 2 300 and c = random_hist 3 800 in
  check_hist_equal "associative" (Hist.merge (Hist.merge a b) c) (Hist.merge a (Hist.merge b c));
  check_hist_equal "commutative" (Hist.merge a b) (Hist.merge b a);
  check_hist_equal "disabled is a right zero" (Hist.merge a Hist.disabled) a;
  check_hist_equal "disabled is a left zero" (Hist.merge Hist.disabled a) a;
  check_hist_equal "empty live hist is a zero" (Hist.merge a (Hist.create ())) a;
  let into = Hist.create () in
  Hist.merge_into ~into a;
  Hist.merge_into ~into b;
  check_hist_equal "merge_into agrees with merge" into (Hist.merge a b)

(* The argument is hoisted and pre-boxed ([Sys.opaque_identity]) so the
   test pins what the contract promises — [record] itself allocates
   nothing.  A per-iteration fresh float would measure the {e caller's}
   argument boxing instead, which the dev profile's [-opaque] build
   can't inline away. *)
let test_hist_record_alloc_free () =
  let h = Hist.create () in
  let v = Sys.opaque_identity 1.5 in
  Hist.record h v;
  Hist.record_unit h;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Hist.record h v;
    Hist.record_unit h
  done;
  let grown = Gc.minor_words () -. before in
  (* slack covers the boxed float returned by [Gc.minor_words] itself;
     any per-record allocation would show as >= 20k words *)
  Alcotest.(check bool) "10k records allocate nothing" true (grown <= 16.0)

let test_hist_record_unit_equiv () =
  let a = Hist.create () and b = Hist.create () in
  for _ = 1 to 1000 do
    Hist.record_unit a;
    Hist.record b 1.0
  done;
  check_hist_equal "record_unit is record 1.0" a b

let test_hist_group_file_roundtrip () =
  let g = Hist.group () in
  let h1 = Hist.get g "engine/apply" and h2 = Hist.get g "events/arrival" in
  Hist.record h1 3.5e-6;
  Hist.record h1 0.012;
  Hist.record h1 0.0;
  for _ = 1 to 42 do
    Hist.record_unit h2
  done;
  ignore (Hist.timer ~period:64 h1);
  with_temp_file (fun path ->
      Hist.write_group_file g path;
      match Hist.read_group_file path with
      | Error e -> Alcotest.failf "read_group_file: %s" e
      | Ok entries ->
          Alcotest.(check (list string))
            "names sorted" [ "engine/apply"; "events/arrival" ] (List.map fst entries);
          check_hist_equal "engine/apply survives" h1 (List.assoc "engine/apply" entries);
          check_hist_equal "events/arrival survives" h2 (List.assoc "events/arrival" entries);
          Alcotest.(check int)
            "sample_period survives" 64
            (Hist.sample_period (List.assoc "engine/apply" entries)));
  match Hist.read_group_file "/nonexistent/p2p_hist.json" with
  | Ok _ -> Alcotest.fail "reading a missing file should fail"
  | Error _ -> ()

(* ---- flight recorder ---- *)

let test_recorder_pow2_capacity () =
  Alcotest.(check int) "5 rounds up to 8" 8 (Recorder.capacity (Recorder.create ~capacity:5 ()));
  Alcotest.(check int) "8 stays 8" 8 (Recorder.capacity (Recorder.create ~capacity:8 ()));
  Alcotest.(check int) "1 stays 1" 1 (Recorder.capacity (Recorder.create ~capacity:1 ()));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Recorder.create: capacity < 1") (fun () ->
      ignore (Recorder.create ~capacity:0 ()))

(* The wraparound pin: a capacity-8 ring dumped at every fill level from
   empty through double wrap must always publish exactly the last
   [min n 8] events, oldest first, with an accurate header. *)
let test_recorder_dump_every_fill_level () =
  for n = 0 to 20 do
    let r = Recorder.create ~capacity:8 () in
    for i = 0 to n - 1 do
      Recorder.record r ~time:(float_of_int i) ~code:(i mod Probe.n_event_codes) ~a:i ~b:(2 * i)
    done;
    Alcotest.(check int) (Printf.sprintf "recorded after %d" n) n (Recorder.recorded r);
    Alcotest.(check int) (Printf.sprintf "dropped after %d" n) (max 0 (n - 8)) (Recorder.dropped r);
    with_temp_file (fun path ->
        Recorder.dump r ~code_name:Probe.code_name path;
        match Recorder.read_summary path with
        | Error e -> Alcotest.failf "read_summary at fill %d: %s" n e
        | Ok ((cap, recorded, dropped), rows) ->
            Alcotest.(check int) "header capacity" 8 cap;
            Alcotest.(check int) "header recorded" n recorded;
            Alcotest.(check int) "header dropped" (max 0 (n - 8)) dropped;
            Alcotest.(check int) "rows kept" (min n 8) (Array.length rows);
            Array.iteri
              (fun j (t, c, a, b) ->
                let i = max 0 (n - 8) + j in
                Alcotest.(check bool)
                  (Printf.sprintf "fill %d row %d" n j)
                  true
                  (t = float_of_int i && c = i mod Probe.n_event_codes && a = i && b = 2 * i))
              rows)
  done

let test_recorder_record_alloc_free () =
  let r = Recorder.create ~capacity:16 () in
  let time = Sys.opaque_identity 2.5 (* pre-boxed, as in the hist test *) in
  Recorder.record r ~time ~code:0 ~a:0 ~b:0;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    Recorder.record r ~time ~code:1 ~a:i ~b:i
  done;
  let grown = Gc.minor_words () -. before in
  Alcotest.(check bool) "10k records allocate nothing" true (grown <= 16.0)

let test_recorder_disabled_inert () =
  Recorder.record Recorder.disabled ~time:1.0 ~code:0 ~a:0 ~b:0;
  Alcotest.(check int) "disabled records nothing" 0 (Recorder.recorded Recorder.disabled);
  with_temp_file (fun path ->
      Recorder.dump Recorder.disabled ~code_name:Probe.code_name path;
      Alcotest.(check string) "disabled dumps nothing" "" (read_file path))

let test_recorder_auto_snapshot () =
  with_temp_file (fun path ->
      let r = Recorder.create ~capacity:8 () in
      Recorder.auto_snapshot r ~every:4 ~min_gap_s:0.0 ~code_name:Probe.code_name path;
      for i = 0 to 8 do
        Recorder.record r ~time:(float_of_int i) ~code:0 ~a:i ~b:i
      done;
      (* snapshots fired at records 4 and 8: whatever a SIGKILL leaves
         behind is a complete, parseable dump of some earlier ring state *)
      match Recorder.read_summary path with
      | Error e -> Alcotest.failf "snapshot unparseable: %s" e
      | Ok ((cap, recorded, _), rows) ->
          Alcotest.(check int) "snapshot capacity" 8 cap;
          Alcotest.(check bool) "snapshot at a multiple of every" true
            (recorded = 4 || recorded = 8);
          Alcotest.(check int) "snapshot rows" recorded (Array.length rows))

(* ---- typed emitters vs the dynamic entry point ---- *)

let test_probe_emitters_match_dynamic () =
  let fixture =
    [
      (1.0, Probe.Arrival { pieces = Pieceset.add 2 (Pieceset.singleton 0) });
      (2.0, Probe.Contact { seed = true; useful = false });
      (2.5, Probe.Contact { seed = false; useful = true });
      (3.0, Probe.Transfer { piece = 1; completed = true });
      (4.0, Probe.Transfer_lost);
      (5.0, Probe.Departure { kind = Probe.Completed });
      (6.0, Probe.Departure { kind = Probe.Aborted });
      (7.0, Probe.Departure { kind = Probe.Seed_departed });
      (8.0, Probe.Seed_toggle { up = false });
      (9.0, Probe.Handoff { fluid = true; n = 12.4 });
      (10.0, Probe.Handoff { fluid = false; n = 3.6 });
    ]
  in
  let mk () =
    let r = Recorder.create ~capacity:64 () in
    let g = Hist.group () in
    (Probe.make ~recorder:r ~hists:g (), r, g)
  in
  let typed, rt, gt = mk () and dynamic, rd, gd = mk () in
  List.iter
    (fun (time, ev) ->
      Probe.event dynamic ~time ev;
      match ev with
      | Probe.Arrival { pieces } -> Probe.arrival typed ~time ~pieces
      | Probe.Contact { seed; useful } -> Probe.contact typed ~time ~seed ~useful
      | Probe.Transfer { piece; completed } -> Probe.transfer typed ~time ~piece ~completed
      | Probe.Transfer_lost -> Probe.transfer_lost typed ~time
      | Probe.Departure { kind } -> Probe.departure typed ~time kind
      | Probe.Seed_toggle { up } -> Probe.seed_toggle typed ~time ~up
      | Probe.Handoff { fluid; n } -> Probe.handoff typed ~time ~fluid ~n)
    fixture;
  let rows_of r =
    with_temp_file (fun path ->
        Recorder.dump r ~code_name:Probe.code_name path;
        match Recorder.read_summary path with
        | Ok (_, rows) -> rows
        | Error e -> Alcotest.failf "dump unreadable: %s" e)
  in
  let expected =
    fixture
    |> List.map (fun (t, ev) -> (t, Probe.event_code ev, Probe.payload_a ev, Probe.payload_b ev))
    |> Array.of_list
  in
  Alcotest.(check bool) "typed rows match the packing spec" true (rows_of rt = expected);
  Alcotest.(check bool) "dynamic rows identical" true (rows_of rd = expected);
  for c = 0 to Probe.n_event_codes - 1 do
    let name = "events/" ^ Probe.code_name c in
    Alcotest.(check int)
      (name ^ " count agrees")
      (Hist.count (Hist.get gd name))
      (Hist.count (Hist.get gt name))
  done

(* ---- the missing-piece-syndrome monitor ---- *)

let run_monitored ~params ~horizon ~seed =
  let m = Monitor.create () in
  let probe =
    (* the CLI's default grid: 200 samples per run *)
    Probe.make ~interval:(horizon /. 200.0)
      ~on_sample:(fun (s : Probe.sample) ->
        Monitor.observe m ~time:s.Probe.time ~one_club:s.Probe.one_club
          ~rarest_piece:s.Probe.rarest_piece ~rarest_count:s.Probe.rarest_count)
      ()
  in
  let stats, _ = Sim_markov.run_seeded ~probe ~seed (Sim_markov.default_config params) ~horizon in
  (m, stats)

(* The Theorem 1 boundary (Zhu & Hajek): with instant departures the
   swarm is unstable iff λ > U_s.  The detector must fire on the
   unstable side — one piece pinned scarce while the one-club grows
   linearly — and stay silent on a comfortably stable swarm. *)
let test_monitor_verdict_flips_across_boundary () =
  let unstable = Scenario.flash_crowd ~k:3 ~lambda:2.0 ~us:0.3 ~mu:2.0 ~gamma:infinity in
  let m_bad, stats = run_monitored ~params:unstable ~horizon:60.0 ~seed:5 in
  Alcotest.(check bool) "samples flowed" true (Monitor.samples_seen m_bad > 100);
  Alcotest.(check bool) "unstable side alerts" true (List.length (Monitor.alerts m_bad) >= 1);
  Alcotest.(check bool) "an episode opened" true (List.length (Monitor.episodes m_bad) >= 1);
  Alcotest.(check bool) "the swarm really blew up" true (stats.Sim_markov.final_n > 30);
  let a = List.hd (Monitor.alerts m_bad) in
  Alcotest.(check bool) "alert carries the syndrome shape" true
    (a.Monitor.one_club >= 8 && a.Monitor.rarest_count <= 2 && a.Monitor.slope > 0.0
   && a.Monitor.t_stat >= 4.0
    && a.Monitor.rarest_piece >= 0
    && a.Monitor.rarest_piece < 3);
  (* same contact and departure dynamics, λ on the stable side of U_s *)
  let stable = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:2.0 ~mu:2.0 ~gamma:infinity in
  let m_ok, _ = run_monitored ~params:stable ~horizon:60.0 ~seed:5 in
  Alcotest.(check bool) "samples flowed" true (Monitor.samples_seen m_ok > 100);
  Alcotest.(check int) "stable side stays silent" 0 (List.length (Monitor.alerts m_ok))

let test_monitor_on_alert_once_per_episode () =
  let fired = ref 0 in
  let m = Monitor.create ~on_alert:(fun _ -> incr fired) () in
  let probe =
    Probe.make ~interval:0.3
      ~on_sample:(fun (s : Probe.sample) ->
        Monitor.observe m ~time:s.Probe.time ~one_club:s.Probe.one_club
          ~rarest_piece:s.Probe.rarest_piece ~rarest_count:s.Probe.rarest_count)
      ()
  in
  let params = Scenario.flash_crowd ~k:3 ~lambda:2.0 ~us:0.3 ~mu:2.0 ~gamma:infinity in
  let _ = Sim_markov.run_seeded ~probe ~seed:5 (Sim_markov.default_config params) ~horizon:60.0 in
  Alcotest.(check int) "hook fires once per episode" (List.length (Monitor.episodes m)) !fired

let test_monitor_config_validation () =
  let bad config name =
    match Monitor.create ~config () with
    | _ -> Alcotest.failf "%s should be rejected" name
    | exception Invalid_argument _ -> ()
  in
  bad { Monitor.default with Monitor.window = 3 } "window < 4";
  bad { Monitor.default with Monitor.pin_fraction = 1.5 } "pin_fraction > 1"

(* Full instrumentation — recorder, hists, and monitor all attached —
   must leave the trajectory bit-identical to a bare run: probes never
   touch the sim RNG and detectors ride the sample grid. *)
let test_full_instrumentation_bit_identity () =
  let config = faulty_config_markov () in
  let bare, _ = Sim_markov.run_seeded ~seed:99 config ~horizon:250.0 in
  let m = Monitor.create () in
  let probe =
    Probe.make ~interval:5.0
      ~on_sample:(fun (s : Probe.sample) ->
        Monitor.observe m ~time:s.Probe.time ~one_club:s.Probe.one_club
          ~rarest_piece:s.Probe.rarest_piece ~rarest_count:s.Probe.rarest_count)
      ~recorder:(Recorder.create ()) ~hists:(Hist.group ()) ()
  in
  let probed, _ = Sim_markov.run_seeded ~probe ~seed:99 config ~horizon:250.0 in
  check_markov_stats_equal "fully instrumented" bare probed;
  Alcotest.(check bool) "the monitor saw the run" true (Monitor.samples_seen m > 0)

(* ---- per-domain metrics merged at join ---- *)

let test_metrics_multi_domain_merge () =
  let work dom_id () =
    let r = Metrics.create () in
    let c = Metrics.counter r "events" in
    let g = Metrics.gauge r "peak_n" in
    let t = Metrics.timer r "phase" in
    for _ = 1 to 1000 * (dom_id + 1) do
      Metrics.incr c
    done;
    Metrics.set g (float_of_int dom_id);
    Metrics.time t (fun () -> ());
    r
  in
  let rs = Array.init 4 (fun i -> Domain.spawn (work i)) |> Array.map Domain.join in
  let fwd = Metrics.create () and rev = Metrics.create () in
  Array.iter (fun r -> Metrics.merge ~into:fwd r) rs;
  for i = Array.length rs - 1 downto 0 do
    Metrics.merge ~into:rev rs.(i)
  done;
  let counter m = Metrics.counter_value (Metrics.counter m "events") in
  let gauge m = Metrics.gauge_value (Metrics.gauge m "peak_n") in
  let timer_n m = Metrics.timer_count (Metrics.timer m "phase") in
  Alcotest.(check int) "counters add across domains" 10_000 (counter fwd);
  Alcotest.(check (float 0.0)) "gauges keep the max" 3.0 (gauge fwd);
  Alcotest.(check int) "timer entries add" 4 (timer_n fwd);
  Alcotest.(check int) "join order irrelevant: counters" (counter fwd) (counter rev);
  Alcotest.(check bool) "join order irrelevant: gauges" true (gauge fwd = gauge rev);
  Alcotest.(check int) "join order irrelevant: timers" (timer_n fwd) (timer_n rev)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float bit-exact" `Quick test_json_float_bit_exact;
          Alcotest.test_case "non-finite as null" `Quick test_json_nonfinite_as_null;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled dead cells" `Quick test_metrics_disabled_dead;
          Alcotest.test_case "enabled counting" `Quick test_metrics_enabled;
          Alcotest.test_case "to_json" `Quick test_metrics_to_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "jsonl format" `Quick test_trace_jsonl;
          Alcotest.test_case "chrome format" `Quick test_trace_chrome;
          Alcotest.test_case "null sink" `Quick test_trace_null_sink;
        ] );
      ( "probe",
        [
          Alcotest.test_case "none is inert" `Quick test_probe_none_is_inert;
          Alcotest.test_case "make validation" `Quick test_probe_make_validation;
          Alcotest.test_case "sample construction" `Quick test_probe_sample_construction;
          Alcotest.test_case "event names serialise" `Quick test_probe_event_names;
        ] );
      ( "probe-sim",
        [
          Alcotest.test_case "markov bit-identity under probes" `Quick
            test_markov_probe_bit_identity;
          Alcotest.test_case "agent bit-identity under probes" `Quick test_agent_probe_bit_identity;
          Alcotest.test_case "grid rides sim time" `Quick test_probe_grid_is_sim_time;
          Alcotest.test_case "interval longer than run" `Quick test_probe_interval_longer_than_run;
          Alcotest.test_case "samples deterministic" `Quick test_probe_samples_deterministic;
        ] );
      ( "series",
        [
          Alcotest.test_case "time-weighted averages" `Quick test_series_averages;
          Alcotest.test_case "file roundtrip" `Quick test_series_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_series_read_rejects_garbage;
        ] );
      ( "jobs-independence",
        [
          Alcotest.test_case "probe series identical across jobs" `Quick
            test_probe_series_jobs_independent;
        ] );
      ( "progress",
        [
          Alcotest.test_case "silent" `Quick test_progress_silent;
          Alcotest.test_case "counters and final line" `Quick test_progress_counters_and_final_line;
        ] );
      ( "profile",
        [
          Alcotest.test_case "disabled" `Quick test_profile_disabled;
          Alcotest.test_case "phases" `Quick test_profile_phases;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic nondecreasing" `Quick test_clock_nondecreasing ] );
      ( "hist",
        [
          Alcotest.test_case "bucket bounds and tails" `Quick test_hist_bucket_bounds;
          Alcotest.test_case "merge laws" `Quick test_hist_merge_laws;
          Alcotest.test_case "record allocates nothing" `Quick test_hist_record_alloc_free;
          Alcotest.test_case "record_unit is record 1.0" `Quick test_hist_record_unit_equiv;
          Alcotest.test_case "group file roundtrip" `Quick test_hist_group_file_roundtrip;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "capacity rounds to a power of two" `Quick
            test_recorder_pow2_capacity;
          Alcotest.test_case "dump at every fill level" `Quick test_recorder_dump_every_fill_level;
          Alcotest.test_case "record allocates nothing" `Quick test_recorder_record_alloc_free;
          Alcotest.test_case "disabled is inert" `Quick test_recorder_disabled_inert;
          Alcotest.test_case "auto-snapshot leaves a parseable ring" `Quick
            test_recorder_auto_snapshot;
        ] );
      ( "emitters",
        [
          Alcotest.test_case "typed emitters match dynamic event" `Quick
            test_probe_emitters_match_dynamic;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "verdict flips across the Theorem 1 boundary" `Quick
            test_monitor_verdict_flips_across_boundary;
          Alcotest.test_case "on_alert fires once per episode" `Quick
            test_monitor_on_alert_once_per_episode;
          Alcotest.test_case "config validation" `Quick test_monitor_config_validation;
          Alcotest.test_case "full instrumentation bit-identity" `Quick
            test_full_instrumentation_bit_identity;
        ] );
      ( "metrics-domains",
        [
          Alcotest.test_case "per-domain registries merge at join" `Quick
            test_metrics_multi_domain_merge;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "jsonl truncation at every offset" `Quick
            test_jsonl_truncation_at_every_offset;
          Alcotest.test_case "valid-looking tail is remnant" `Quick
            test_jsonl_valid_looking_tail_is_remnant;
          Alcotest.test_case "interior corruption is error" `Quick
            test_jsonl_interior_corruption_is_error;
          Alcotest.test_case "blank lines skipped" `Quick test_jsonl_blank_lines_skipped;
          Alcotest.test_case "write_file_atomic" `Quick test_write_file_atomic_basic;
          Alcotest.test_case "writer raise leaves target" `Quick
            test_write_file_atomic_writer_raise_leaves_target;
          Alcotest.test_case "read_jsonl_file with torn tail" `Quick
            test_read_jsonl_file_roundtrip;
        ] );
    ]
