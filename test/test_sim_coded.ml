(* The network-coded swarm simulator (Section VIII-B). *)

open P2p_core

let gift f =
  { Stability.Coded.q = 16; k = 6; us = 0.0; mu = 1.0; gamma = infinity;
    lambda0 = 1.0 -. f; lambda1 = f }

let test_of_gift () =
  let cfg = Sim_coded.of_gift (gift 0.3) in
  Alcotest.(check int) "q" 16 cfg.q;
  Alcotest.(check (list (pair int (float 1e-12)))) "arrivals" [ (0, 0.7); (1, 0.3) ] cfg.arrivals;
  let cfg0 = Sim_coded.of_gift (gift 0.0) in
  Alcotest.(check (list (pair int (float 1e-12)))) "no gift stream" [ (0, 1.0) ] cfg0.arrivals

let test_conservation () =
  let s = Sim_coded.run_seeded ~seed:1 (Sim_coded.of_gift (gift 0.4)) ~horizon:400.0 in
  Alcotest.(check int) "arrivals - departures = final" (s.arrivals - s.departures) s.final_n;
  Alcotest.(check int) "dim histogram sums to final" s.final_n
    (Array.fold_left ( + ) 0 s.dim_histogram)

let test_stable_side () =
  let s = Sim_coded.run_seeded ~seed:2 (Sim_coded.of_gift (gift 0.5)) ~horizon:600.0 in
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "stable" "appears-stable" (Classify.verdict_to_string r.verdict);
  Alcotest.(check bool) "small population" true (s.time_avg_n < 50.0)

let test_transient_side () =
  let s = Sim_coded.run_seeded ~seed:3 (Sim_coded.of_gift (gift 0.02)) ~horizon:600.0 in
  let r = Classify.of_samples s.samples in
  Alcotest.(check string) "unstable" "appears-unstable" (Classify.verdict_to_string r.verdict);
  (* the coded one-club: by the end nearly everyone sits at dimension K-1
     (the time average is lower because the club needs time to form) *)
  let club_final =
    float_of_int s.dim_histogram.(5) /. float_of_int (Int.max 1 s.final_n)
  in
  Alcotest.(check bool) "final near-complete club" true (club_final > 0.8);
  Alcotest.(check bool) "club dominates time average too" true
    (s.near_complete_fraction > 0.3)

let test_completions_decode () =
  let s = Sim_coded.run_seeded ~seed:4 (Sim_coded.of_gift (gift 0.5)) ~horizon:400.0 in
  Alcotest.(check bool) "peers decode and depart" true (s.completions > 50);
  Alcotest.(check bool) "useful transfers happen" true (s.useful_transfers > 0);
  (* each completed peer needed at least K useful receptions (minus gifts) *)
  Alcotest.(check bool) "useful >= completions * (K-1)" true
    (s.useful_transfers >= s.completions * (6 - 1))

let test_finite_gamma_seeds_dwell () =
  let g = { (gift 0.5) with gamma = 1.0 } in
  let s = Sim_coded.run_seeded ~seed:5 (Sim_coded.of_gift g) ~horizon:400.0 in
  Alcotest.(check bool) "seeds counted in population" true (s.time_avg_n > 0.0);
  Alcotest.(check int) "conservation with dwell" (s.arrivals - s.departures) s.final_n

let test_smart_exchange_more_efficient () =
  (* With q = 2 random combinations are often useless; Remark 16's
     description exchange must strictly reduce useless transfers. *)
  let g = { Stability.Coded.q = 2; k = 6; us = 0.0; mu = 1.0; gamma = infinity;
            lambda0 = 0.5; lambda1 = 0.5 } in
  let plain = Sim_coded.run_seeded ~seed:6 (Sim_coded.of_gift g) ~horizon:400.0 in
  let smart =
    Sim_coded.run_seeded ~seed:6 { (Sim_coded.of_gift g) with smart_exchange = true }
      ~horizon:400.0
  in
  let ratio (s : Sim_coded.stats) =
    float_of_int s.useless_transfers
    /. float_of_int (Int.max 1 (s.useful_transfers + s.useless_transfers))
  in
  Alcotest.(check bool)
    (Printf.sprintf "useless ratio %.3f < %.3f" (ratio smart) (ratio plain))
    true
    (ratio smart < ratio plain)

let test_gifted_with_many_pieces () =
  (* Arrivals holding K random coded pieces usually decode instantly. *)
  let cfg =
    { Sim_coded.q = 16; k = 4; us = 0.0; mu = 1.0; gamma = infinity;
      arrivals = [ (6, 1.0) ]; smart_exchange = false; faults = Faults.none }
  in
  let s = Sim_coded.run_seeded ~seed:7 cfg ~horizon:200.0 in
  Alcotest.(check bool) "most arrivals complete immediately" true
    (s.completions > s.arrivals / 2)

let test_deterministic () =
  let run () = Sim_coded.run_seeded ~seed:8 (Sim_coded.of_gift (gift 0.3)) ~horizon:200.0 in
  let a = run () and b = run () in
  Alcotest.(check int) "same events" a.events b.events;
  Alcotest.(check int) "same useful" a.useful_transfers b.useful_transfers

let test_validation () =
  Alcotest.(check bool) "no arrivals rejected" true
    (try
       ignore
         (Sim_coded.run_seeded ~seed:9
            { Sim_coded.q = 4; k = 3; us = 0.0; mu = 1.0; gamma = infinity; arrivals = [];
              smart_exchange = false; faults = Faults.none }
            ~horizon:10.0);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "sim_coded"
    [
      ( "sim_coded",
        [
          Alcotest.test_case "of_gift" `Quick test_of_gift;
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "stable side" `Quick test_stable_side;
          Alcotest.test_case "transient side" `Quick test_transient_side;
          Alcotest.test_case "completions decode" `Quick test_completions_decode;
          Alcotest.test_case "finite gamma" `Quick test_finite_gamma_seeds_dwell;
          Alcotest.test_case "smart exchange" `Quick test_smart_exchange_more_efficient;
          Alcotest.test_case "gifted many pieces" `Quick test_gifted_with_many_pieces;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
