(* Fault-injection layer: spec validation, deterministic fault schedules,
   the no-fault bit-identity guarantee, and the physical sanity of each
   fault type (outage duty cycle, churn accounting, transfer loss). *)

module Rng = P2p_prng.Rng
open P2p_core

let stable_params = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:0.8 ~mu:1.0 ~gamma:2.0

(* ---- spec construction ---- *)

let test_make_validation () =
  let check_invalid name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument msg ->
         (* satellite contract: the offending value is echoed *)
         String.length msg > 0)
  in
  check_invalid "zero mean_up" (fun () -> Faults.make ~outage:(0.0, 1.0) ());
  check_invalid "negative mean_down" (fun () -> Faults.make ~outage:(1.0, -2.0) ());
  check_invalid "nan mean_up" (fun () -> Faults.make ~outage:(nan, 1.0) ());
  check_invalid "infinite mean_down" (fun () -> Faults.make ~outage:(1.0, infinity) ());
  check_invalid "negative abort rate" (fun () -> Faults.make ~abort_rate:(-0.1) ());
  check_invalid "loss_prob > 1" (fun () -> Faults.make ~loss_prob:1.5 ());
  check_invalid "loss_prob < 0" (fun () -> Faults.make ~loss_prob:(-0.01) ());
  (* the message names the offending value *)
  (try
     ignore (Faults.make ~loss_prob:7.5 ());
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument msg ->
     Alcotest.(check bool)
       (Printf.sprintf "message %S echoes 7.5" msg)
       true
       (let rec contains i =
          i + 3 <= String.length msg && (String.sub msg i 3 = "7.5" || contains (i + 1))
        in
        contains 0))

let test_is_none_and_uptime () =
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  Alcotest.(check bool) "all-zero make is none" true (Faults.is_none (Faults.make ()));
  Alcotest.(check bool) "outage is not none" false
    (Faults.is_none (Faults.make ~outage:(1.0, 1.0) ()));
  Alcotest.(check bool) "churn is not none" false
    (Faults.is_none (Faults.make ~abort_rate:0.1 ()));
  Alcotest.(check (float 1e-12)) "uptime of none" 1.0 (Faults.uptime_fraction Faults.none);
  let f = Faults.make ~outage:(30.0, 10.0) () in
  Alcotest.(check (float 1e-12)) "duty cycle 30/(30+10)" 0.75 (Faults.uptime_fraction f);
  Alcotest.(check (float 1e-12)) "effective U_s" 0.6 (Faults.effective_us f ~us:0.8)

let test_effective_classifier () =
  (* flash_crowd at us=0.8 is stable; scaling U_s toward 0 must cross
     into the transient region, and the classifier must agree with
     classify on hand-scaled parameters. *)
  Alcotest.(check bool) "full uptime = plain classify" true
    (Stability.classify_effective stable_params ~uptime_fraction:1.0
    = Stability.classify stable_params);
  let scaled = Stability.effective_params stable_params ~uptime_fraction:0.25 in
  Alcotest.(check (float 1e-12)) "us scaled" (0.8 *. 0.25) scaled.us;
  Alcotest.(check bool) "agrees with classify of scaled params" true
    (Stability.classify_effective stable_params ~uptime_fraction:0.25
    = Stability.classify scaled);
  Alcotest.(check bool) "invalid uptime rejected" true
    (try
       ignore (Stability.effective_params stable_params ~uptime_fraction:1.5);
       false
     with Invalid_argument _ -> true)

(* ---- deterministic fault schedules ---- *)

let faulty = Faults.make ~outage:(40.0, 10.0) ~abort_rate:0.02 ~loss_prob:0.1 ()

let markov_stats seed =
  let config = { (Sim_markov.default_config stable_params) with faults = faulty } in
  fst (Sim_markov.run_seeded ~seed config ~horizon:300.0)

let agent_stats seed =
  let config = { (Sim_agent.default_config stable_params) with faults = faulty } in
  fst (Sim_agent.run_seeded ~seed config ~horizon:300.0)

let test_fault_schedule_deterministic () =
  let a = markov_stats 2024 and b = markov_stats 2024 in
  Alcotest.(check int) "events" a.events b.events;
  Alcotest.(check int) "transfers" a.transfers b.transfers;
  Alcotest.(check int) "aborted" a.aborted_peers b.aborted_peers;
  Alcotest.(check int) "lost" a.lost_transfers b.lost_transfers;
  Alcotest.(check bool) "outage_time bit-identical" true
    (Float.equal a.outage_time b.outage_time);
  Alcotest.(check bool) "time_avg_n bit-identical" true
    (Float.equal a.time_avg_n b.time_avg_n);
  let c = markov_stats 2025 in
  Alcotest.(check bool) "different seed, different schedule" true
    (not (Float.equal a.outage_time c.outage_time));
  let d = agent_stats 2024 and e = agent_stats 2024 in
  Alcotest.(check int) "agent aborted" d.aborted_peers e.aborted_peers;
  Alcotest.(check int) "agent lost" d.lost_transfers e.lost_transfers;
  Alcotest.(check bool) "agent outage_time bit-identical" true
    (Float.equal d.outage_time e.outage_time)

(* ---- the no-fault bit-identity guarantee ----

   Golden values from the simulators with faults = none (same params,
   seed 2024, horizon 500).  If these move, every published replication
   result silently changes.  Re-pinned when the hot-path samplers
   changed the RNG draw order (fast piece selection, alias-method
   arrivals); the chi-square suites in test_policy and test_dist check
   the new draw path agrees in distribution with the spec. *)

let test_golden_no_fault_markov () =
  let stats, _ =
    Sim_markov.run_seeded ~seed:2024 (Sim_markov.default_config stable_params) ~horizon:500.0
  in
  Alcotest.(check int) "events" 2080 stats.events;
  Alcotest.(check int) "transfers" 651 stats.transfers;
  Alcotest.(check int) "final n" 4 stats.final_n;
  Alcotest.(check bool)
    (Printf.sprintf "time-avg N %.17g unchanged" stats.time_avg_n)
    true
    (Float.equal stats.time_avg_n 2.6027392530325715);
  Alcotest.(check int) "no outage time" 0 (compare stats.outage_time 0.0);
  Alcotest.(check int) "no aborts" 0 stats.aborted_peers;
  Alcotest.(check int) "no losses" 0 stats.lost_transfers

let test_golden_no_fault_agent () =
  let stats, _ =
    Sim_agent.run_seeded ~seed:2024 (Sim_agent.default_config stable_params) ~horizon:500.0
  in
  Alcotest.(check int) "events" 2604 stats.events;
  Alcotest.(check int) "transfers" 721 stats.transfers;
  Alcotest.(check int) "final n" 2 stats.final_n;
  Alcotest.(check bool)
    (Printf.sprintf "time-avg N %.17g unchanged" stats.time_avg_n)
    true
    (Float.equal stats.time_avg_n 3.588285721585124);
  Alcotest.(check bool)
    (Printf.sprintf "mean sojourn %.17g unchanged" stats.mean_sojourn)
    true
    (Float.equal stats.mean_sojourn 7.445331774318185)

(* ---- physical sanity of each fault type ---- *)

let test_outage_time_tracks_duty_cycle () =
  (* mean_up = mean_down: the seed should be down about half the time.
     Averaged over 8 seeds and a long horizon the tolerance is loose but
     safely away from 0 and 1. *)
  let horizon = 2000.0 in
  let config =
    { (Sim_markov.default_config stable_params) with
      faults = Faults.make ~outage:(25.0, 25.0) ()
    }
  in
  let total = ref 0.0 in
  for seed = 1 to 8 do
    let stats, _ = Sim_markov.run_seeded ~seed config ~horizon in
    Alcotest.(check bool) "outage within [0, horizon]" true
      (stats.outage_time >= 0.0 && stats.outage_time <= horizon);
    total := !total +. stats.outage_time
  done;
  let fraction = !total /. (8.0 *. horizon) in
  Alcotest.(check bool)
    (Printf.sprintf "down fraction %.3f near 0.5" fraction)
    true
    (fraction > 0.35 && fraction < 0.65)

let test_churn_accounting () =
  let config =
    { (Sim_markov.default_config stable_params) with faults = Faults.make ~abort_rate:0.5 () }
  in
  let stats, _ = Sim_markov.run_seeded ~seed:11 config ~horizon:400.0 in
  Alcotest.(check bool) "aborts happen at rate 0.5/peer" true (stats.aborted_peers > 0);
  Alcotest.(check bool) "aborts are departures" true (stats.aborted_peers <= stats.departures);
  (* every peer is accounted for: still present + departed = arrived + initial *)
  let initial = List.fold_left (fun acc (_, n) -> acc + n) 0 config.initial in
  Alcotest.(check int) "conservation of peers"
    (initial + stats.arrivals)
    (stats.final_n + stats.departures);
  let agent_config =
    { (Sim_agent.default_config stable_params) with faults = Faults.make ~abort_rate:0.5 () }
  in
  let astats, _ = Sim_agent.run_seeded ~seed:11 agent_config ~horizon:400.0 in
  Alcotest.(check bool) "agent aborts happen" true (astats.aborted_peers > 0);
  Alcotest.(check bool) "agent aborts are departures" true
    (astats.aborted_peers <= astats.departures)

let test_total_loss_stops_all_transfers () =
  let check_sim name transfers lost =
    Alcotest.(check int) (name ^ ": no transfer completes at loss_prob 1") 0 transfers;
    Alcotest.(check bool) (name ^ ": losses were drawn") true (lost > 0)
  in
  let config =
    { (Sim_markov.default_config stable_params) with faults = Faults.make ~loss_prob:1.0 () }
  in
  let stats, _ = Sim_markov.run_seeded ~seed:5 config ~horizon:200.0 in
  check_sim "markov" stats.transfers stats.lost_transfers;
  let agent_config =
    { (Sim_agent.default_config stable_params) with faults = Faults.make ~loss_prob:1.0 () }
  in
  let astats, _ = Sim_agent.run_seeded ~seed:5 agent_config ~horizon:200.0 in
  check_sim "agent" astats.transfers astats.lost_transfers

let test_outage_starves_seed_uploads () =
  (* us very large but the seed almost always down: the swarm should look
     close to the us = 0 swarm, not the us = 8 one.  Witness: a one-club
     initial state cannot be rescued, so the population keeps growing. *)
  let p = Scenario.flash_crowd ~k:3 ~lambda:2.0 ~us:8.0 ~mu:1.0 ~gamma:infinity in
  let one_club = P2p_pieceset.Pieceset.(remove 0 (full ~k:3)) in
  let run faults =
    let config =
      { (Sim_markov.default_config p) with faults; initial = [ (one_club, 40) ] }
    in
    (fst (Sim_markov.run_seeded ~seed:9 config ~horizon:150.0)).final_n
  in
  let healthy = run Faults.none in
  let degraded = run (Faults.make ~outage:(0.5, 50.0) ()) in
  Alcotest.(check bool)
    (Printf.sprintf "population under near-total outage (%d) dwarfs healthy (%d)" degraded
       healthy)
    true
    (degraded > 2 * healthy)

let () =
  Alcotest.run "faults"
    [
      ( "spec",
        [
          Alcotest.test_case "make validation" `Quick test_make_validation;
          Alcotest.test_case "is_none and uptime fraction" `Quick test_is_none_and_uptime;
          Alcotest.test_case "effective-U_s classifier" `Quick test_effective_classifier;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fault schedule is a function of the seed" `Quick
            test_fault_schedule_deterministic;
          Alcotest.test_case "golden no-fault markov run" `Quick test_golden_no_fault_markov;
          Alcotest.test_case "golden no-fault agent run" `Quick test_golden_no_fault_agent;
        ] );
      ( "physics",
        [
          Alcotest.test_case "outage time tracks the duty cycle" `Quick
            test_outage_time_tracks_duty_cycle;
          Alcotest.test_case "churn accounting" `Quick test_churn_accounting;
          Alcotest.test_case "loss_prob 1 stops all transfers" `Quick
            test_total_loss_stops_all_transfers;
          Alcotest.test_case "outage starves seed uploads" `Slow
            test_outage_starves_seed_uploads;
        ] );
    ]
