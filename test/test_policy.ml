(* Piece-selection policies: the usefulness constraint of Section VIII-A
   and each policy's specific choice rule. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let all_policies =
  [ Policy.random_useful; Policy.rarest_first; Policy.most_common_first; Policy.sequential ]

let random_state rng k =
  let entries =
    List.filter_map
      (fun c ->
        let count = P2p_prng.Rng.int_below rng 4 in
        if count > 0 then Some (PS.of_index c, count) else None)
      (List.init ((1 lsl k) - 1) (fun i -> i))
  in
  if entries = [] then State.of_counts [ (PS.empty, 1) ] else State.of_counts entries

let test_useful_pieces () =
  let k = 4 in
  Alcotest.(check int) "seed offers all missing" 3
    (PS.cardinal (Policy.useful_pieces ~k ~uploader:Policy.Fixed_seed ~downloader:(PS.singleton 0)));
  Alcotest.(check int) "peer offers difference" 1
    (PS.cardinal
       (Policy.useful_pieces ~k ~uploader:(Policy.Peer (PS.of_list [ 0; 1 ]))
          ~downloader:(PS.of_list [ 1; 2 ])))

let test_distributions_valid () =
  (* Every policy must return a normalised distribution supported on
     useful pieces, for random states and random uploader/downloader. *)
  let rng = P2p_prng.Rng.of_seed 11 in
  let k = 4 in
  for _ = 1 to 300 do
    let state = random_state rng k in
    let downloader = PS.of_index (P2p_prng.Rng.int_below rng ((1 lsl k) - 1)) in
    let uploader =
      if P2p_prng.Rng.bool rng then Policy.Fixed_seed
      else Policy.Peer (PS.of_index (P2p_prng.Rng.int_below rng (1 lsl k)))
    in
    let useful = Policy.useful_pieces ~k ~uploader ~downloader in
    if not (PS.is_empty useful) then
      List.iter
        (fun (policy : Policy.t) ->
          let dist = policy.distribution ~k ~state ~uploader ~downloader in
          Alcotest.(check bool)
            (Printf.sprintf "%s valid" policy.name)
            true
            (Policy.validate_distribution dist ~useful))
        all_policies
  done

let test_random_useful_uniform () =
  let state = State.of_counts [ (PS.empty, 1) ] in
  let dist =
    Policy.random_useful.distribution ~k:4 ~state ~uploader:Policy.Fixed_seed
      ~downloader:PS.empty
  in
  Alcotest.(check int) "4 options" 4 (List.length dist);
  List.iter (fun (_, p) -> Alcotest.(check (float 1e-12)) "uniform" 0.25 p) dist

let test_rarest_first_prefers_rare () =
  (* piece 3 has no copies; the seed must choose it. *)
  let state = State.of_counts [ (PS.of_list [ 0; 1 ], 5); (PS.singleton 0, 2) ] in
  let dist =
    Policy.rarest_first.distribution ~k:3 ~state ~uploader:Policy.Fixed_seed ~downloader:PS.empty
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "only the rarest" [ (2, 1.0) ] dist

let test_rarest_first_ties_uniform () =
  let state = State.of_counts [ (PS.empty, 3) ] in
  let dist =
    Policy.rarest_first.distribution ~k:2 ~state ~uploader:Policy.Fixed_seed ~downloader:PS.empty
  in
  Alcotest.(check int) "both tied" 2 (List.length dist);
  List.iter (fun (_, p) -> Alcotest.(check (float 1e-12)) "uniform over ties" 0.5 p) dist

let test_most_common_first_prefers_common () =
  let state = State.of_counts [ (PS.of_list [ 0; 1 ], 5); (PS.singleton 0, 2) ] in
  let dist =
    Policy.most_common_first.distribution ~k:3 ~state ~uploader:Policy.Fixed_seed
      ~downloader:PS.empty
  in
  (* piece 1 has 7 copies: the most common. *)
  Alcotest.(check (list (pair int (float 1e-12)))) "most common" [ (0, 1.0) ] dist

let test_sequential_lowest () =
  let state = State.of_counts [ (PS.empty, 1) ] in
  let dist =
    Policy.sequential.distribution ~k:4 ~state ~uploader:(Policy.Peer (PS.of_list [ 2; 3 ]))
      ~downloader:(PS.singleton 3)
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "lowest useful" [ (2, 1.0) ] dist

let test_rarest_constrained_by_uploader () =
  (* The globally rarest piece may not be held by the uploader; the policy
     must still pick among useful pieces only. *)
  let state = State.of_counts [ (PS.singleton 0, 10); (PS.singleton 2, 1) ] in
  (* rarest overall is piece 2 (index 1, zero copies) but uploader {1}
     holds only piece 1. *)
  let dist =
    Policy.rarest_first.distribution ~k:3 ~state ~uploader:(Policy.Peer (PS.singleton 0))
      ~downloader:PS.empty
  in
  Alcotest.(check (list (pair int (float 1e-12)))) "forced useful" [ (0, 1.0) ] dist

let test_sample_none_when_useless () =
  let rng = P2p_prng.Rng.of_seed 12 in
  let state = State.of_counts [ (PS.singleton 0, 1) ] in
  Alcotest.(check (option int)) "no useful piece" None
    (Policy.sample Policy.random_useful ~rng ~k:2 ~state
       ~uploader:(Policy.Peer (PS.singleton 0)) ~downloader:(PS.of_list [ 0; 1 ]))

let test_sample_respects_distribution () =
  let rng = P2p_prng.Rng.of_seed 13 in
  let state = State.of_counts [ (PS.empty, 1) ] in
  let counts = Array.make 3 0 in
  let n = 30_000 in
  for _ = 1 to n do
    match
      Policy.sample Policy.random_useful ~rng ~k:3 ~state ~uploader:Policy.Fixed_seed
        ~downloader:PS.empty
    with
    | Some i -> counts.(i) <- counts.(i) + 1
    | None -> Alcotest.fail "seed must always help an empty peer"
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "uniform sampling" true (Float.abs (freq -. (1.0 /. 3.0)) < 0.02))
    counts

(* ---- fast-path / spec agreement ----

   The simulators draw through [sample_fast]; the paper-facing object is
   [distribution].  For every built-in policy, over random states and
   contacts, the fast path must (a) agree with the spec on when a piece
   exists, (b) only ever return spec-supported pieces, and (c) match the
   spec probabilities by Pearson chi-square at the 99.9% level. *)

let chi_square_fast_vs_spec policy =
  let rng = P2p_prng.Rng.of_seed (Hashtbl.hash policy.Policy.name) in
  let k = 4 in
  let contacts = 60 and draws = 4_000 in
  (* 99.9% critical values of chi-square for df = 1 .. 8 *)
  let crit = [| nan; 10.83; 13.82; 16.27; 18.47; 20.52; 22.46; 24.32; 26.12 |] in
  let checked = ref 0 in
  for _ = 1 to contacts do
    (* Three contact shapes: sparse downloader vs the seed in a random
       state (wide useful sets for random-useful), the same in a fully
       symmetric state where every piece count ties (wide tie sets for
       the rarity policies), and fully random (single-choice and
       no-useful-piece paths). *)
    let state, downloader, uploader =
      match P2p_prng.Rng.int_below rng 3 with
      | 0 ->
          ( random_state rng k,
            (if P2p_prng.Rng.bool rng then PS.empty
             else PS.singleton (P2p_prng.Rng.int_below rng k)),
            Policy.Fixed_seed )
      | 1 ->
          let copies = 1 + P2p_prng.Rng.int_below rng 3 in
          ( State.of_counts (List.init k (fun i -> (PS.singleton i, copies))),
            (if P2p_prng.Rng.bool rng then PS.empty
             else PS.singleton (P2p_prng.Rng.int_below rng k)),
            Policy.Fixed_seed )
      | _ ->
          ( random_state rng k,
            PS.of_index (P2p_prng.Rng.int_below rng ((1 lsl k) - 1)),
            if P2p_prng.Rng.bool rng then Policy.Fixed_seed
            else Policy.Peer (PS.of_index (P2p_prng.Rng.int_below rng (1 lsl k))) )
    in
    let useful = Policy.useful_pieces ~k ~uploader ~downloader in
    if PS.is_empty useful then
      Alcotest.(check bool)
        (policy.Policy.name ^ ": fast path returns None when useless")
        true
        (Policy.sample policy ~rng ~k ~state ~uploader ~downloader = None)
    else begin
      let dist = policy.Policy.distribution ~k ~state ~uploader ~downloader in
      let expected = Array.make k 0.0 in
      List.iter (fun (i, p) -> expected.(i) <- expected.(i) +. p) dist;
      let counts = Array.make k 0 in
      for _ = 1 to draws do
        match Policy.sample policy ~rng ~k ~state ~uploader ~downloader with
        | None -> Alcotest.fail (policy.Policy.name ^ ": fast path lost a useful piece")
        | Some i -> counts.(i) <- counts.(i) + 1
      done;
      let stat = ref 0.0 and df = ref (-1) in
      Array.iteri
        (fun i p ->
          if p > 0.0 then begin
            incr df;
            let e = p *. float_of_int draws in
            let d = float_of_int counts.(i) -. e in
            stat := !stat +. (d *. d /. e)
          end
          else
            Alcotest.(check int)
              (policy.Policy.name ^ ": fast path outside spec support")
              0 counts.(i))
        expected;
      if !df >= 1 then begin
        incr checked;
        Alcotest.(check bool)
          (Printf.sprintf "%s: chi2 %.2f with df %d" policy.Policy.name !stat !df)
          true
          (!stat < crit.(!df))
      end
    end
  done;
  (* Sequential is one-point by construction, so it never accrues degrees
     of freedom; every other policy must have been genuinely exercised. *)
  if policy.Policy.name <> "sequential" then
    Alcotest.(check bool)
      (policy.Policy.name ^ ": exercised multi-choice contacts")
      true (!checked >= 5)

let test_fast_path_matches_spec () = List.iter chi_square_fast_vs_spec all_policies

let test_fallback_sampler_matches_spec () =
  (* A policy built from its distribution alone (the of_distribution
     fallback) must behave like the built-in it mirrors. *)
  List.iter
    (fun p ->
      chi_square_fast_vs_spec (Policy.of_distribution ~name:p.Policy.name p.Policy.distribution))
    all_policies

let () =
  Alcotest.run "policy"
    [
      ( "policy",
        [
          Alcotest.test_case "useful pieces" `Quick test_useful_pieces;
          Alcotest.test_case "distributions valid" `Quick test_distributions_valid;
          Alcotest.test_case "random uniform" `Quick test_random_useful_uniform;
          Alcotest.test_case "rarest prefers rare" `Quick test_rarest_first_prefers_rare;
          Alcotest.test_case "rarest ties" `Quick test_rarest_first_ties_uniform;
          Alcotest.test_case "most common" `Quick test_most_common_first_prefers_common;
          Alcotest.test_case "sequential lowest" `Quick test_sequential_lowest;
          Alcotest.test_case "rarest constrained" `Quick test_rarest_constrained_by_uploader;
          Alcotest.test_case "sample none" `Quick test_sample_none_when_useless;
          Alcotest.test_case "sample distribution" `Quick test_sample_respects_distribution;
        ] );
      ( "fast path",
        [
          Alcotest.test_case "matches spec (chi-square)" `Quick test_fast_path_matches_spec;
          Alcotest.test_case "fallback matches spec" `Quick test_fallback_sampler_matches_spec;
        ] );
    ]
