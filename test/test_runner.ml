(* The parallel-correctness layer for the Monte-Carlo replication runner:
   merged aggregates must be bit-identical for every domain count (and
   across back-to-back runs), exceptions must propagate, and the runner
   must reproduce the sequential simulators exactly. *)

module Runner = P2p_runner.Runner
module Rng = P2p_prng.Rng
module Welford = P2p_stats.Welford
module Histogram = P2p_stats.Histogram
open P2p_core

let stable_params = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:0.8 ~mu:1.0 ~gamma:2.0

(* A realistic thunk: a short Markov-chain simulation, metrics + pooled
   N_t observations for the histogram path. *)
let sim_thunk ~rng ~index:_ =
  let stats, _ = Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon:60.0 in
  Runner.rep
    ~obs:(Array.map (fun (_, n) -> float_of_int n) stats.samples)
    [| stats.time_avg_n; float_of_int stats.final_n; float_of_int stats.transfers |]

let summary jobs =
  Runner.run_summary ~jobs ~hist:{ Runner.lo = 0.0; hi = 20.0; bins = 10 }
    ~metrics:[ "time-avg N"; "final N"; "transfers" ]
    ~master_seed:2024 ~replications:16 sim_thunk

(* Bit-identical: Float.equal on every accumulator component, no tolerance. *)
let check_welford_identical name a b =
  Alcotest.(check int) (name ^ ": count") (Welford.count a) (Welford.count b);
  Alcotest.(check bool)
    (Printf.sprintf "%s: mean %.17g = %.17g" name (Welford.mean a) (Welford.mean b))
    true
    (Float.equal (Welford.mean a) (Welford.mean b));
  Alcotest.(check bool) (name ^ ": variance") true
    (Float.equal (Welford.variance a) (Welford.variance b));
  Alcotest.(check bool) (name ^ ": min") true
    (Float.equal (Welford.min_value a) (Welford.min_value b));
  Alcotest.(check bool) (name ^ ": max") true
    (Float.equal (Welford.max_value a) (Welford.max_value b))

let check_hist_identical name a b =
  Alcotest.(check int) (name ^ ": count") (Histogram.count a) (Histogram.count b);
  Alcotest.(check int) (name ^ ": underflow") (Histogram.underflow a) (Histogram.underflow b);
  Alcotest.(check int) (name ^ ": overflow") (Histogram.overflow a) (Histogram.overflow b);
  for i = 0 to 9 do
    Alcotest.(check int)
      (Printf.sprintf "%s: bin %d" name i)
      (Histogram.bin_count a i) (Histogram.bin_count b i)
  done;
  Alcotest.(check bool) (name ^ ": mean") true
    (Float.equal (Histogram.mean a) (Histogram.mean b))

let check_summary_identical name (a : Runner.summary) (b : Runner.summary) =
  List.iter2
    (fun (na, wa) (nb, wb) ->
      Alcotest.(check string) (name ^ ": metric name") na nb;
      check_welford_identical (name ^ "/" ^ na) wa wb)
    a.stats b.stats;
  check_hist_identical (name ^ "/hist") (Option.get a.hist) (Option.get b.hist)

let test_deterministic_across_jobs () =
  let s1 = summary 1 and s2 = summary 2 and s4 = summary 4 in
  Alcotest.(check int) "jobs=1 used 1 domain" 1 s1.timing.jobs;
  check_summary_identical "jobs 1 vs 2" s1 s2;
  check_summary_identical "jobs 1 vs 4" s1 s4

let test_deterministic_back_to_back () =
  check_summary_identical "run 1 vs run 2" (summary 2) (summary 2)

let test_run_map_indexed_by_replication () =
  (* Results land in replication order regardless of scheduling, and each
     replication sees exactly the stream (master, index). *)
  let f ~rng ~index = (index, Rng.bits64 rng) in
  let seq, _ = Runner.run_map ~jobs:1 ~master_seed:5 ~replications:23 f in
  let par, _ = Runner.run_map ~jobs:4 ~chunk:2 ~master_seed:5 ~replications:23 f in
  Alcotest.(check int) "length" 23 (Array.length par);
  Array.iteri
    (fun i slot ->
      let idx, bits = Option.get slot in
      Alcotest.(check int) "index in slot" i idx;
      let expected = Rng.bits64 (Runner.derive_rng ~master_seed:5 ~index:i) in
      Alcotest.check Alcotest.int64 "derived stream" expected bits;
      Alcotest.check Alcotest.int64 "matches sequential" (snd (Option.get seq.(i))) bits)
    par

let test_matches_sequential_simulator () =
  (* Replication i through the runner = a plain sequential run with the
     derived rng: the runner adds nothing to the stochastic law. *)
  let outputs, _ =
    Runner.run_map ~jobs:3 ~master_seed:99 ~replications:6 (fun ~rng ~index:_ ->
        let stats, _ =
          Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon:40.0
        in
        (stats.events, stats.final_n))
  in
  Array.iteri
    (fun i slot ->
      let events, final_n = Option.get slot in
      let rng = Runner.derive_rng ~master_seed:99 ~index:i in
      let stats, _ =
        Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon:40.0
      in
      Alcotest.(check int) "events" stats.events events;
      Alcotest.(check int) "final n" stats.final_n final_n)
    outputs

let test_zero_replications () =
  let results, timing = Runner.run_map ~jobs:2 ~master_seed:1 ~replications:0 (fun ~rng:_ ~index -> index) in
  Alcotest.(check int) "no results" 0 (Array.length results);
  Alcotest.(check int) "no chunks" 0 timing.chunks;
  let s =
    Runner.run_summary ~jobs:2 ~metrics:[ "m" ] ~master_seed:1 ~replications:0
      (fun ~rng:_ ~index:_ -> Runner.rep [| 0.0 |])
  in
  Alcotest.(check int) "empty accumulator" 0 (Welford.count (snd (List.hd s.stats)))

let test_more_jobs_than_replications () =
  let results, timing =
    Runner.run_map ~jobs:16 ~chunk:1 ~master_seed:3 ~replications:3 (fun ~rng:_ ~index -> index)
  in
  Alcotest.(check int) "domains clamped to chunks" 3 timing.jobs;
  Alcotest.(check (array int)) "all replications ran" [| 0; 1; 2 |]
    (Array.map Option.get results)

let test_invalid_arguments () =
  let check_invalid name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  check_invalid "negative replications" (fun () ->
      Runner.run_map ~master_seed:1 ~replications:(-1) (fun ~rng:_ ~index -> index));
  check_invalid "zero chunk" (fun () ->
      Runner.run_map ~chunk:0 ~master_seed:1 ~replications:4 (fun ~rng:_ ~index -> index));
  check_invalid "zero jobs" (fun () ->
      Runner.run_map ~jobs:0 ~master_seed:1 ~replications:4 (fun ~rng:_ ~index -> index));
  check_invalid "metric arity mismatch" (fun () ->
      Runner.run_summary ~metrics:[ "a"; "b" ] ~master_seed:1 ~replications:4
        (fun ~rng:_ ~index:_ -> Runner.rep [| 1.0 |]));
  check_invalid "retry count < 1" (fun () ->
      Runner.run_map ~on_error:(Runner.Retry 0) ~master_seed:1 ~replications:4
        (fun ~rng:_ ~index -> index))

exception Boom

let test_exception_propagates () =
  Alcotest.(check bool) "raises across domains" true
    (try
       ignore
         (Runner.run_map ~jobs:4 ~chunk:1 ~master_seed:1 ~replications:12
            (fun ~rng:_ ~index -> if index = 7 then raise Boom else index));
       false
     with Boom -> true)

let test_utilisation_sane () =
  let _, timing = Runner.run_map ~jobs:2 ~master_seed:8 ~replications:16 sim_thunk in
  let u = Runner.utilisation timing in
  Alcotest.(check bool) "utilisation in (0, 1.05]" true (u > 0.0 && u <= 1.05);
  Alcotest.(check bool) "wall clock positive" true (timing.wall_s >= 0.0)

(* ---- cross-implementation agreement at scale ----

   test_sim.ml compares single trajectories; here the runner drives 32
   short replications of each simulator on the same stable scenario and
   the two time-average populations must agree within the overlap of
   their 95% confidence intervals.  Deterministic given the master
   seeds, so this cannot flake. *)

let test_markov_vs_agent_at_scale () =
  let reps = 32 and horizon = 400.0 in
  let mean_ci master_seed f =
    let s =
      Runner.run_summary ~metrics:[ "time-avg N" ] ~master_seed ~replications:reps f
    in
    let w = snd (List.hd s.stats) in
    (Welford.mean w, Welford.confidence_interval w ~z:1.96)
  in
  let m_mean, (m_lo, m_hi) =
    mean_ci 7001 (fun ~rng ~index:_ ->
        let stats, _ =
          Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon
        in
        Runner.rep [| stats.time_avg_n |])
  in
  let a_mean, (a_lo, a_hi) =
    mean_ci 7002 (fun ~rng ~index:_ ->
        let stats, _ = Sim_agent.run ~rng (Sim_agent.default_config stable_params) ~horizon in
        Runner.rep [| stats.time_avg_n |])
  in
  Alcotest.(check bool)
    (Printf.sprintf "CI overlap: markov %.3f [%.3f, %.3f] vs agent %.3f [%.3f, %.3f]" m_mean
       m_lo m_hi a_mean a_lo a_hi)
    true
    (m_lo <= a_hi && a_lo <= m_hi)

(* ---- failure isolation ----

   Skip/Retry must (a) name exactly the replications that failed, with
   the exception and its backtrace, (b) leave the surviving
   replications' streams and merged aggregates untouched — bit-identical
   across jobs and equal to a clean sweep's values slot for slot. *)

(* Same draws as a clean thunk, but detonates on one index (after the
   draw, through a helper, so a backtrace frame exists). *)
let detonate () = raise Boom

let flaky_value ~fail_at ~rng ~index =
  let bits = Rng.bits64 rng in
  if index = fail_at then detonate ();
  (index, bits)

let test_skip_names_failure_and_keeps_survivors () =
  Printexc.record_backtrace true;
  let clean, _ =
    Runner.run_map ~jobs:1 ~master_seed:2024 ~replications:12 (flaky_value ~fail_at:(-1))
  in
  let skip, timing =
    Runner.run_map ~jobs:3 ~chunk:2 ~on_error:Runner.Skip ~master_seed:2024 ~replications:12
      (flaky_value ~fail_at:5)
  in
  (match timing.failures with
  | [ f ] ->
      Alcotest.(check int) "failed index" 5 f.index;
      Alcotest.(check bool) "exception preserved" true (f.error = Boom);
      Alcotest.(check bool) "backtrace captured" true
        (Printexc.raw_backtrace_to_string f.backtrace <> "")
  | l -> Alcotest.failf "expected exactly one failure, got %d" (List.length l));
  Array.iteri
    (fun i slot ->
      if i = 5 then Alcotest.(check bool) "failed slot is None" true (slot = None)
      else
        Alcotest.check Alcotest.int64 "survivor untouched"
          (snd (Option.get clean.(i)))
          (snd (Option.get slot)))
    skip

let test_skip_summary_bit_identical_across_jobs () =
  let sweep jobs =
    Runner.run_summary ~jobs ~on_error:Runner.Skip
      ~hist:{ Runner.lo = 0.0; hi = 20.0; bins = 10 }
      ~metrics:[ "time-avg N"; "final N"; "transfers" ]
      ~master_seed:2024 ~replications:16
      (fun ~rng ~index ->
        let r = sim_thunk ~rng ~index in
        if index = 3 || index = 11 then detonate ();
        r)
  in
  let s1 = sweep 1 and s2 = sweep 2 and s4 = sweep 4 in
  List.iter
    (fun (s : Runner.summary) ->
      Alcotest.(check (list int)) "failed indices" [ 3; 11 ]
        (List.map (fun (f : Runner.failure) -> f.index) s.timing.failures))
    [ s1; s2; s4 ];
  check_summary_identical "skip: jobs 1 vs 2" s1 s2;
  check_summary_identical "skip: jobs 1 vs 4" s1 s4;
  (* and equal to a clean 16-replication sweep with the two failed
     replications' contributions absent: count is the cheap witness *)
  Alcotest.(check int) "14 survivors aggregated" 14 (Welford.count (snd (List.hd s1.stats)))

let test_retry_uses_fresh_deterministic_stream () =
  (* The thunk fails exactly when it sees the attempt-0 draw of (42, 3),
     so index 3 fails once and then succeeds on the attempt-1 stream. *)
  let bait = Rng.bits64 (Runner.derive_rng ~master_seed:42 ~index:3) in
  let thunk ~rng ~index:_ =
    let b = Rng.bits64 rng in
    if Int64.equal b bait then detonate ();
    b
  in
  let res, timing =
    Runner.run_map ~jobs:2 ~on_error:(Runner.Retry 2) ~master_seed:42 ~replications:6 thunk
  in
  Alcotest.(check int) "no failures recorded" 0 (List.length timing.failures);
  let expected = Rng.bits64 (Runner.derive_retry_rng ~master_seed:42 ~index:3 ~attempt:1) in
  Alcotest.check Alcotest.int64 "slot 3 holds the attempt-1 value" expected (Option.get res.(3));
  (* every other slot is its ordinary attempt-0 value *)
  for i = 0 to 5 do
    if i <> 3 then
      Alcotest.check Alcotest.int64 "attempt-0 value"
        (Rng.bits64 (Runner.derive_rng ~master_seed:42 ~index:i))
        (Option.get res.(i))
  done

let test_retry_exhaustion_records_failure () =
  Printexc.record_backtrace true;
  let res, timing =
    Runner.run_map ~jobs:1 ~on_error:(Runner.Retry 2) ~master_seed:7 ~replications:4
      (fun ~rng:_ ~index -> if index = 2 then detonate () else index)
  in
  (match timing.failures with
  | [ f ] ->
      Alcotest.(check int) "failed index" 2 f.index;
      Alcotest.(check bool) "exception preserved" true (f.error = Boom)
  | l -> Alcotest.failf "expected exactly one failure, got %d" (List.length l));
  Alcotest.(check bool) "failed slot is None" true (res.(2) = None);
  Alcotest.(check int) "survivor" 3 (Option.get res.(3))

let test_abort_still_propagates_with_backtrace () =
  Printexc.record_backtrace true;
  match
    Runner.run_map ~jobs:2 ~chunk:1 ~on_error:Runner.Abort ~master_seed:1 ~replications:8
      (fun ~rng:_ ~index -> if index = 4 then detonate () else index)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom ->
      let bt = Printexc.get_backtrace () in
      Alcotest.(check bool) "backtrace survives the domain join" true (bt <> "")

let test_flagged_and_budget_feed_partial () =
  (* flagged replications count toward summary.partial ... *)
  let s =
    Runner.run_summary ~jobs:2 ~metrics:[ "m" ] ~master_seed:1 ~replications:8
      (fun ~rng:_ ~index -> Runner.rep ~flagged:(index mod 2 = 0) [| 1.0 |])
  in
  Alcotest.(check int) "flagged -> partial" 4 s.partial;
  Alcotest.(check int) "flagged but aggregated" 8 (Welford.count (snd (List.hd s.stats)));
  (* ... as do replications that blow the wall budget *)
  let burn ~rng:_ ~index:_ =
    let acc = ref 0.0 in
    for i = 1 to 200_000 do acc := !acc +. float_of_int i done;
    Runner.rep [| !acc |]
  in
  let s = Runner.run_summary ~jobs:1 ~budget_s:0.0 ~metrics:[ "m" ] ~master_seed:1 ~replications:3 burn in
  Alcotest.(check int) "over budget counted" 3 s.timing.over_budget;
  Alcotest.(check int) "over budget -> partial" 3 s.partial;
  Alcotest.(check int) "over budget still aggregated" 3 (Welford.count (snd (List.hd s.stats)))

let test_simulator_truncation_flag_propagates () =
  let s =
    Runner.run_summary ~jobs:1 ~metrics:[ "time-avg N" ] ~master_seed:3 ~replications:2
      (fun ~rng ~index:_ ->
        let stats, _ =
          Sim_markov.run ~max_events:10 ~rng (Sim_markov.default_config stable_params)
            ~horizon:60.0
        in
        Alcotest.(check bool) "10 events cannot reach t=60" true stats.truncated;
        Runner.rep ~flagged:stats.truncated [| stats.time_avg_n |])
  in
  Alcotest.(check int) "truncated -> partial" 2 s.partial

let test_sigint_flushes_partial_results () =
  (* The first replication SIGINTs its own process; the runner's handler
     stops further chunks from being claimed, finishes the current one,
     and reports interrupted instead of dying. *)
  let res, timing =
    Runner.run_map ~jobs:1 ~chunk:2 ~handle_sigint:true ~master_seed:1 ~replications:64
      (fun ~rng:_ ~index ->
        if index = 0 then Unix.kill (Unix.getpid ()) Sys.sigint;
        (* give the pending signal a safe point to land on *)
        ignore (Sys.opaque_identity (Array.make 1024 index));
        index)
  in
  Alcotest.(check bool) "flagged as interrupted" true timing.interrupted;
  Alcotest.(check int) "chunk 0 completed" 0 (Option.get res.(0));
  Alcotest.(check bool) "tail chunks never ran" true (res.(63) = None);
  let completed = Array.fold_left (fun n s -> if s = None then n else n + 1) 0 res in
  Alcotest.(check bool) "stopped early" true (completed < 64)

(* ---- wall-clock watchdog (--rep-timeout) ---- *)

(* Replications on [slow] indices sleep well past the watchdog; the rest
   return instantly.  The margin (300ms vs a 50ms timeout vs ~0ms fast
   reps) is wide enough that the verdict is scheduling-independent. *)
let watchdog_thunk slow ~rng:_ ~index =
  if List.mem index slow then Unix.sleepf 0.3;
  float_of_int (index * index)

let test_rep_timeout_discards_late_value () =
  let res, timing =
    Runner.run_map ~jobs:1 ~on_error:Runner.Skip ~rep_timeout_s:0.05 ~master_seed:1
      ~replications:6 (watchdog_thunk [ 2 ])
  in
  Alcotest.(check bool) "late value discarded" true (res.(2) = None);
  Alcotest.(check int) "one failure" 1 (List.length timing.failures);
  (match timing.failures with
  | [ f ] ->
      Alcotest.(check int) "failure names the slow rep" 2 f.index;
      Alcotest.(check bool) "failure is Rep_timeout" true (f.error = Runner.Rep_timeout)
  | _ -> Alcotest.fail "expected exactly one failure");
  Alcotest.(check (float 0.0)) "fast reps kept" 25.0 (Option.get res.(5))

let test_rep_timeout_survivors_identical_across_jobs () =
  let run jobs =
    Runner.run_summary ~jobs ~chunk:2 ~on_error:Runner.Skip ~rep_timeout_s:0.05
      ~metrics:[ "v" ] ~master_seed:9 ~replications:8
      (fun ~rng ~index ->
        if index = 3 then Unix.sleepf 0.3;
        (* survivors must keep their deterministic streams *)
        Runner.rep [| Rng.float rng |])
  in
  let a = run 1 and b = run 2 and c = run 4 in
  let w s = snd (List.hd s.Runner.stats) in
  check_welford_identical "jobs 1 vs 2" (w a) (w b);
  check_welford_identical "jobs 1 vs 4" (w a) (w c);
  Alcotest.(check int) "survivor count" 7 (Welford.count (w a));
  List.iter
    (fun (s : Runner.summary) ->
      Alcotest.(check int) "timed-out rep recorded" 1 (List.length s.timing.failures))
    [ a; b; c ]

let test_rep_timeout_retry_gets_fresh_watchdog () =
  (* A rep that only sleeps on its first attempt: the retry runs under a
     fresh watchdog and succeeds, so nothing is recorded as failed. *)
  let attempts = Atomic.make 0 in
  let res, timing =
    Runner.run_map ~jobs:1 ~on_error:(Runner.Retry 2) ~rep_timeout_s:0.05 ~master_seed:4
      ~replications:3
      (fun ~rng:_ ~index ->
        if index = 1 && Atomic.fetch_and_add attempts 1 = 0 then Unix.sleepf 0.3;
        index * 10)
  in
  Alcotest.(check int) "no failures after retry" 0 (List.length timing.failures);
  Alcotest.(check (float 0.0)) "retried rep kept" 10.0 (float_of_int (Option.get res.(1)));
  Alcotest.(check bool) "first attempt really timed out" true (Atomic.get attempts >= 2)

let test_rep_timeout_cooperative_poll () =
  (* A thunk that polls [deadline_exceeded] bails out early instead of
     wasting the full sleep. *)
  let res, timing =
    Runner.run_map ~jobs:1 ~on_error:Runner.Skip ~rep_timeout_s:0.05 ~master_seed:1
      ~replications:2
      (fun ~rng:_ ~index ->
        if index = 0 then
          while true do
            if Runner.deadline_exceeded () then raise Runner.Rep_timeout;
            ignore (Sys.opaque_identity index)
          done;
        index)
  in
  Alcotest.(check bool) "poller recorded as timeout" true (res.(0) = None);
  (match timing.failures with
  | [ f ] -> Alcotest.(check bool) "Rep_timeout" true (f.error = Runner.Rep_timeout)
  | _ -> Alcotest.fail "expected one failure");
  Alcotest.(check bool) "no watchdog -> deadline never fires" true
    (not (Runner.deadline_exceeded ()))

let test_rep_timeout_validation () =
  List.iter
    (fun bad ->
      try
        ignore
          (Runner.run_map ~rep_timeout_s:bad ~master_seed:1 ~replications:1
             (fun ~rng:_ ~index -> index));
        Alcotest.failf "rep_timeout_s %g accepted" bad
      with Invalid_argument _ -> ())
    [ 0.0; -1.0; Float.nan; Float.infinity ]

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [
          Alcotest.test_case "identical across jobs 1/2/4" `Quick test_deterministic_across_jobs;
          Alcotest.test_case "identical back-to-back" `Quick test_deterministic_back_to_back;
          Alcotest.test_case "run_map indexed by replication" `Quick
            test_run_map_indexed_by_replication;
          Alcotest.test_case "matches sequential simulator" `Quick
            test_matches_sequential_simulator;
        ] );
      ( "engine",
        [
          Alcotest.test_case "zero replications" `Quick test_zero_replications;
          Alcotest.test_case "more jobs than replications" `Quick
            test_more_jobs_than_replications;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "utilisation sane" `Quick test_utilisation_sane;
        ] );
      ( "failure isolation",
        [
          Alcotest.test_case "skip names failure, keeps survivors" `Quick
            test_skip_names_failure_and_keeps_survivors;
          Alcotest.test_case "skip summary bit-identical across jobs" `Quick
            test_skip_summary_bit_identical_across_jobs;
          Alcotest.test_case "retry uses fresh deterministic stream" `Quick
            test_retry_uses_fresh_deterministic_stream;
          Alcotest.test_case "retry exhaustion records failure" `Quick
            test_retry_exhaustion_records_failure;
          Alcotest.test_case "abort propagates with backtrace" `Quick
            test_abort_still_propagates_with_backtrace;
          Alcotest.test_case "flagged and budget feed partial" `Quick
            test_flagged_and_budget_feed_partial;
          Alcotest.test_case "simulator truncation flag propagates" `Quick
            test_simulator_truncation_flag_propagates;
          Alcotest.test_case "SIGINT flushes partial results" `Quick
            test_sigint_flushes_partial_results;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "late value discarded" `Quick test_rep_timeout_discards_late_value;
          Alcotest.test_case "survivors identical across jobs" `Quick
            test_rep_timeout_survivors_identical_across_jobs;
          Alcotest.test_case "retry gets fresh watchdog" `Quick
            test_rep_timeout_retry_gets_fresh_watchdog;
          Alcotest.test_case "cooperative poll" `Quick test_rep_timeout_cooperative_poll;
          Alcotest.test_case "validation" `Quick test_rep_timeout_validation;
        ] );
      ( "cross-implementation",
        [
          Alcotest.test_case "markov vs agent, 32 replications" `Slow
            test_markov_vs_agent_at_scale;
        ] );
    ]
