(* The parallel-correctness layer for the Monte-Carlo replication runner:
   merged aggregates must be bit-identical for every domain count (and
   across back-to-back runs), exceptions must propagate, and the runner
   must reproduce the sequential simulators exactly. *)

module Runner = P2p_runner.Runner
module Rng = P2p_prng.Rng
module Welford = P2p_stats.Welford
module Histogram = P2p_stats.Histogram
open P2p_core

let stable_params = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:0.8 ~mu:1.0 ~gamma:2.0

(* A realistic thunk: a short Markov-chain simulation, metrics + pooled
   N_t observations for the histogram path. *)
let sim_thunk ~rng ~index:_ =
  let stats, _ = Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon:60.0 in
  ( [| stats.time_avg_n; float_of_int stats.final_n; float_of_int stats.transfers |],
    Array.map (fun (_, n) -> float_of_int n) stats.samples )

let summary jobs =
  Runner.run_summary ~jobs ~hist:{ Runner.lo = 0.0; hi = 20.0; bins = 10 }
    ~metrics:[ "time-avg N"; "final N"; "transfers" ]
    ~master_seed:2024 ~replications:16 sim_thunk

(* Bit-identical: Float.equal on every accumulator component, no tolerance. *)
let check_welford_identical name a b =
  Alcotest.(check int) (name ^ ": count") (Welford.count a) (Welford.count b);
  Alcotest.(check bool)
    (Printf.sprintf "%s: mean %.17g = %.17g" name (Welford.mean a) (Welford.mean b))
    true
    (Float.equal (Welford.mean a) (Welford.mean b));
  Alcotest.(check bool) (name ^ ": variance") true
    (Float.equal (Welford.variance a) (Welford.variance b));
  Alcotest.(check bool) (name ^ ": min") true
    (Float.equal (Welford.min_value a) (Welford.min_value b));
  Alcotest.(check bool) (name ^ ": max") true
    (Float.equal (Welford.max_value a) (Welford.max_value b))

let check_hist_identical name a b =
  Alcotest.(check int) (name ^ ": count") (Histogram.count a) (Histogram.count b);
  Alcotest.(check int) (name ^ ": underflow") (Histogram.underflow a) (Histogram.underflow b);
  Alcotest.(check int) (name ^ ": overflow") (Histogram.overflow a) (Histogram.overflow b);
  for i = 0 to 9 do
    Alcotest.(check int)
      (Printf.sprintf "%s: bin %d" name i)
      (Histogram.bin_count a i) (Histogram.bin_count b i)
  done;
  Alcotest.(check bool) (name ^ ": mean") true
    (Float.equal (Histogram.mean a) (Histogram.mean b))

let check_summary_identical name (a : Runner.summary) (b : Runner.summary) =
  List.iter2
    (fun (na, wa) (nb, wb) ->
      Alcotest.(check string) (name ^ ": metric name") na nb;
      check_welford_identical (name ^ "/" ^ na) wa wb)
    a.stats b.stats;
  check_hist_identical (name ^ "/hist") (Option.get a.hist) (Option.get b.hist)

let test_deterministic_across_jobs () =
  let s1 = summary 1 and s2 = summary 2 and s4 = summary 4 in
  Alcotest.(check int) "jobs=1 used 1 domain" 1 s1.timing.jobs;
  check_summary_identical "jobs 1 vs 2" s1 s2;
  check_summary_identical "jobs 1 vs 4" s1 s4

let test_deterministic_back_to_back () =
  check_summary_identical "run 1 vs run 2" (summary 2) (summary 2)

let test_run_map_indexed_by_replication () =
  (* Results land in replication order regardless of scheduling, and each
     replication sees exactly the stream (master, index). *)
  let f ~rng ~index = (index, Rng.bits64 rng) in
  let seq, _ = Runner.run_map ~jobs:1 ~master_seed:5 ~replications:23 f in
  let par, _ = Runner.run_map ~jobs:4 ~chunk:2 ~master_seed:5 ~replications:23 f in
  Alcotest.(check int) "length" 23 (Array.length par);
  Array.iteri
    (fun i (idx, bits) ->
      Alcotest.(check int) "index in slot" i idx;
      let expected = Rng.bits64 (Runner.derive_rng ~master_seed:5 ~index:i) in
      Alcotest.check Alcotest.int64 "derived stream" expected bits;
      Alcotest.check Alcotest.int64 "matches sequential" (snd seq.(i)) bits)
    par

let test_matches_sequential_simulator () =
  (* Replication i through the runner = a plain sequential run with the
     derived rng: the runner adds nothing to the stochastic law. *)
  let outputs, _ =
    Runner.run_map ~jobs:3 ~master_seed:99 ~replications:6 (fun ~rng ~index:_ ->
        let stats, _ =
          Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon:40.0
        in
        (stats.events, stats.final_n))
  in
  Array.iteri
    (fun i (events, final_n) ->
      let rng = Runner.derive_rng ~master_seed:99 ~index:i in
      let stats, _ =
        Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon:40.0
      in
      Alcotest.(check int) "events" stats.events events;
      Alcotest.(check int) "final n" stats.final_n final_n)
    outputs

let test_zero_replications () =
  let results, timing = Runner.run_map ~jobs:2 ~master_seed:1 ~replications:0 (fun ~rng:_ ~index -> index) in
  Alcotest.(check int) "no results" 0 (Array.length results);
  Alcotest.(check int) "no chunks" 0 timing.chunks;
  let s =
    Runner.run_summary ~jobs:2 ~metrics:[ "m" ] ~master_seed:1 ~replications:0
      (fun ~rng:_ ~index:_ -> ([| 0.0 |], [||]))
  in
  Alcotest.(check int) "empty accumulator" 0 (Welford.count (snd (List.hd s.stats)))

let test_more_jobs_than_replications () =
  let results, timing =
    Runner.run_map ~jobs:16 ~chunk:1 ~master_seed:3 ~replications:3 (fun ~rng:_ ~index -> index)
  in
  Alcotest.(check int) "domains clamped to chunks" 3 timing.jobs;
  Alcotest.(check (array int)) "all replications ran" [| 0; 1; 2 |] results

let test_invalid_arguments () =
  let check_invalid name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  check_invalid "negative replications" (fun () ->
      Runner.run_map ~master_seed:1 ~replications:(-1) (fun ~rng:_ ~index -> index));
  check_invalid "zero chunk" (fun () ->
      Runner.run_map ~chunk:0 ~master_seed:1 ~replications:4 (fun ~rng:_ ~index -> index));
  check_invalid "zero jobs" (fun () ->
      Runner.run_map ~jobs:0 ~master_seed:1 ~replications:4 (fun ~rng:_ ~index -> index));
  check_invalid "metric arity mismatch" (fun () ->
      Runner.run_summary ~metrics:[ "a"; "b" ] ~master_seed:1 ~replications:4
        (fun ~rng:_ ~index:_ -> ([| 1.0 |], [||])))

exception Boom

let test_exception_propagates () =
  Alcotest.(check bool) "raises across domains" true
    (try
       ignore
         (Runner.run_map ~jobs:4 ~chunk:1 ~master_seed:1 ~replications:12
            (fun ~rng:_ ~index -> if index = 7 then raise Boom else index));
       false
     with Boom -> true)

let test_utilisation_sane () =
  let _, timing = Runner.run_map ~jobs:2 ~master_seed:8 ~replications:16 sim_thunk in
  let u = Runner.utilisation timing in
  Alcotest.(check bool) "utilisation in (0, 1.05]" true (u > 0.0 && u <= 1.05);
  Alcotest.(check bool) "wall clock positive" true (timing.wall_s >= 0.0)

(* ---- cross-implementation agreement at scale ----

   test_sim.ml compares single trajectories; here the runner drives 32
   short replications of each simulator on the same stable scenario and
   the two time-average populations must agree within the overlap of
   their 95% confidence intervals.  Deterministic given the master
   seeds, so this cannot flake. *)

let test_markov_vs_agent_at_scale () =
  let reps = 32 and horizon = 400.0 in
  let mean_ci master_seed f =
    let s =
      Runner.run_summary ~metrics:[ "time-avg N" ] ~master_seed ~replications:reps f
    in
    let w = snd (List.hd s.stats) in
    (Welford.mean w, Welford.confidence_interval w ~z:1.96)
  in
  let m_mean, (m_lo, m_hi) =
    mean_ci 7001 (fun ~rng ~index:_ ->
        let stats, _ =
          Sim_markov.run ~rng (Sim_markov.default_config stable_params) ~horizon
        in
        ([| stats.time_avg_n |], [||]))
  in
  let a_mean, (a_lo, a_hi) =
    mean_ci 7002 (fun ~rng ~index:_ ->
        let stats, _ = Sim_agent.run ~rng (Sim_agent.default_config stable_params) ~horizon in
        ([| stats.time_avg_n |], [||]))
  in
  Alcotest.(check bool)
    (Printf.sprintf "CI overlap: markov %.3f [%.3f, %.3f] vs agent %.3f [%.3f, %.3f]" m_mean
       m_lo m_hi a_mean a_lo a_hi)
    true
    (m_lo <= a_hi && a_lo <= m_hi)

let () =
  Alcotest.run "runner"
    [
      ( "determinism",
        [
          Alcotest.test_case "identical across jobs 1/2/4" `Quick test_deterministic_across_jobs;
          Alcotest.test_case "identical back-to-back" `Quick test_deterministic_back_to_back;
          Alcotest.test_case "run_map indexed by replication" `Quick
            test_run_map_indexed_by_replication;
          Alcotest.test_case "matches sequential simulator" `Quick
            test_matches_sequential_simulator;
        ] );
      ( "engine",
        [
          Alcotest.test_case "zero replications" `Quick test_zero_replications;
          Alcotest.test_case "more jobs than replications" `Quick
            test_more_jobs_than_replications;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "utilisation sane" `Quick test_utilisation_sane;
        ] );
      ( "cross-implementation",
        [
          Alcotest.test_case "markov vs agent, 32 replications" `Slow
            test_markov_vs_agent_at_scale;
        ] );
    ]
