(* The compiled GF(q) kernels against the closure-based Field/Mat
   reference, and the incremental subspace tracker against batch row
   reduction — the two equivalences the PR9 fast path rests on. *)

module Field = P2p_gf.Field
module Mat = P2p_gf.Mat
module Kernel = P2p_gf.Kernel
module Subspace = P2p_coding.Subspace
module Rng = P2p_prng.Rng

(* Every kernel variant: Gf2 (2), Prime (3), Char2 (4, 8, 16, 256),
   and — via test_generic below — Generic (9, 27). *)
let kernel_sizes = [ 2; 3; 4; 8; 16; 256 ]

let test_gf_memoised () =
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "Field.gf %d physically equal" q)
        true
        (Field.gf q == Field.gf q);
      Alcotest.(check bool)
        (Printf.sprintf "Kernel.of_field %d physically equal" q)
        true
        (Kernel.of_field (Field.gf q) == Kernel.of_field (Field.gf q)))
    kernel_sizes

(* Element operations: exhaustive over all pairs for q <= 16, random
   sampling for 256. *)
let test_elements_vs_field () =
  let rng = Rng.of_seed 11 in
  List.iter
    (fun q ->
      let f = Field.gf q in
      let kern = Kernel.of_field f in
      Alcotest.(check int) "q" q (Kernel.q kern);
      let pairs =
        if q <= 16 then
          List.concat_map (fun a -> List.init q (fun b -> (a, b))) (List.init q Fun.id)
        else List.init 500 (fun _ -> (Rng.int_below rng q, Rng.int_below rng q))
      in
      List.iter
        (fun (a, b) ->
          Alcotest.(check int) "add" (f.Field.add a b) (Kernel.add kern a b);
          Alcotest.(check int) "sub" (f.Field.sub a b) (Kernel.sub kern a b);
          Alcotest.(check int) "neg" (f.Field.neg a) (Kernel.neg kern a);
          Alcotest.(check int) "mul" (f.Field.mul a b) (Kernel.mul kern a b);
          if a <> 0 then Alcotest.(check int) "inv" (f.Field.inv a) (Kernel.inv kern a))
        pairs;
      Alcotest.(check bool) "inv 0 raises" true
        (try
           ignore (Kernel.inv kern 0);
           false
         with Division_by_zero -> true))
    kernel_sizes

(* Odd-characteristic extensions fall back to the Generic variant and
   must still agree with the closures. *)
let test_generic_fallback () =
  List.iter
    (fun q ->
      let f = Field.gf q in
      let kern = Kernel.of_field f in
      for a = 0 to q - 1 do
        for b = 0 to q - 1 do
          Alcotest.(check int) "mul" (f.Field.mul a b) (Kernel.mul kern a b)
        done;
        if a <> 0 then Alcotest.(check int) "inv" (f.Field.inv a) (Kernel.inv kern a)
      done)
    [ 9; 27 ]

(* axpy/scale against the same row operation written with the closures. *)
let prop_axpy_scale_vs_reference =
  QCheck2.Test.make ~name:"axpy_into/scale_into match closure reference" ~count:300
    QCheck2.Gen.(
      pair (oneofl kernel_sizes) (pair small_nat (pair small_nat small_nat)))
    (fun (q, (c0, (s1, s2))) ->
      let f = Field.gf q in
      let kern = Kernel.of_field f in
      let k = 17 in
      let rng = Rng.of_seed_pair ~master:s1 ~stream:s2 in
      let x = Array.init k (fun _ -> Rng.int_below rng q) in
      let y = Array.init k (fun _ -> Rng.int_below rng q) in
      let c = c0 mod q in
      let expect_axpy = Array.init k (fun j -> f.Field.add (f.Field.mul c x.(j)) y.(j)) in
      let got = Array.copy y in
      Kernel.axpy_into kern ~c ~x ~y:got;
      let expect_scale = Array.map (fun v -> f.Field.mul c v) x in
      let scaled = Array.copy x in
      Kernel.scale_into kern ~c scaled;
      got = expect_axpy && scaled = expect_scale)

let test_axpy_length_mismatch () =
  let kern = Kernel.of_field (Field.gf 16) in
  Alcotest.(check bool) "length mismatch raises" true
    (try
       Kernel.axpy_into kern ~c:1 ~x:(Array.make 3 0) ~y:(Array.make 4 0);
       false
     with Invalid_argument _ -> true)

(* ---- bitsliced helpers ---- *)

let test_ctz () =
  for j = 0 to 62 do
    Alcotest.(check int) (Printf.sprintf "ctz bit %d" j) j (Kernel.ctz (1 lsl j));
    (* extra high bits must not disturb the answer *)
    Alcotest.(check int) "ctz with noise" j (Kernel.ctz ((1 lsl j) lor (1 lsl 62)))
  done

let test_bit_helpers () =
  Alcotest.(check int) "words_for 1" 1 (Kernel.words_for ~k:1);
  Alcotest.(check int) "words_for 63" 1 (Kernel.words_for ~k:63);
  Alcotest.(check int) "words_for 64" 2 (Kernel.words_for ~k:64);
  Alcotest.(check int) "words_for 126" 2 (Kernel.words_for ~k:126);
  let w = Array.make (Kernel.words_for ~k:130) 0 in
  Alcotest.(check int) "zero row" (-1) (Kernel.lowest_bit w);
  Kernel.set_bit w 129;
  Alcotest.(check int) "high bit" 129 (Kernel.lowest_bit w);
  Kernel.set_bit w 7;
  Alcotest.(check int) "low bit wins" 7 (Kernel.lowest_bit w);
  Alcotest.(check int) "get set" 1 (Kernel.get_bit w 129);
  Alcotest.(check int) "get clear" 0 (Kernel.get_bit w 128);
  let v = Array.make (Array.length w) 0 in
  Kernel.set_bit v 7;
  Kernel.xor_into ~x:v ~y:w;
  Alcotest.(check int) "xor cleared bit 7" 0 (Kernel.get_bit w 7);
  Alcotest.(check int) "bit 129 survives" 129 (Kernel.lowest_bit w)

(* ---- incremental subspace vs batch row reduction ---- *)

(* Feed the same random receive trace to the incremental tracker and to
   batch Mat.rank/row_reduce over the accumulated history; dimension and
   canonical basis must agree after every receive. *)
let check_trace ~q ~k ~inserts ~seed =
  let f = Field.gf q in
  let rng = Rng.of_seed seed in
  let s = Subspace.create f ~k in
  let history = ref [] in
  for step = 1 to inserts do
    (* mix of fresh uniform vectors and members of the current span
       (members must be rejected as useless) *)
    let v =
      if Rng.int_below rng 4 = 0 && Subspace.dim s > 0 then Subspace.random_member s rng
      else Mat.random_vec f (Rng.int_below rng) k
    in
    let dim_before = Subspace.dim s in
    let useful = Subspace.insert s v in
    history := v :: !history;
    let batch = Array.of_list (List.rev !history) in
    let rank = Mat.rank f batch in
    Alcotest.(check int)
      (Printf.sprintf "q=%d k=%d step %d: dim = batch rank" q k step)
      rank (Subspace.dim s);
    Alcotest.(check bool) "useful iff dim grew" (Subspace.dim s = dim_before + 1) useful;
    let canonical = Mat.row_reduce f batch in
    Alcotest.(check bool)
      (Printf.sprintf "q=%d k=%d step %d: basis canonical" q k step)
      true
      (Subspace.basis s = canonical)
  done

let test_incremental_matches_batch () =
  List.iter
    (fun q -> check_trace ~q ~k:9 ~inserts:14 ~seed:(100 + q))
    kernel_sizes

(* GF(2) with k > 63: rows span multiple packed words. *)
let test_incremental_multiword_gf2 () =
  check_trace ~q:2 ~k:80 ~inserts:30 ~seed:7

let prop_incremental_matches_batch =
  QCheck2.Test.make ~name:"incremental dim = batch rank (random traces)" ~count:60
    QCheck2.Gen.(pair (oneofl kernel_sizes) (pair (int_range 1 12) small_nat))
    (fun (q, (k, seed)) ->
      let f = Field.gf q in
      let rng = Rng.of_seed seed in
      let s = Subspace.create f ~k in
      let history = ref [] in
      let ok = ref true in
      for _ = 1 to 10 do
        let v = Mat.random_vec f (Rng.int_below rng) k in
        ignore (Subspace.insert s v);
        history := v :: !history;
        let batch = Array.of_list !history in
        if Subspace.dim s <> Mat.rank f batch then ok := false
      done;
      !ok)

let test_row_reduce_ragged () =
  let f = Field.gf 4 in
  Alcotest.(check bool) "ragged rows raise" true
    (try
       ignore (Mat.row_reduce f [| [| 1; 2; 3 |]; [| 1; 2 |] |]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "kernel"
    [
      ( "kernels",
        [
          Alcotest.test_case "memoisation" `Quick test_gf_memoised;
          Alcotest.test_case "elements vs field" `Quick test_elements_vs_field;
          Alcotest.test_case "generic fallback" `Quick test_generic_fallback;
          Alcotest.test_case "axpy length" `Quick test_axpy_length_mismatch;
          QCheck_alcotest.to_alcotest prop_axpy_scale_vs_reference;
        ] );
      ( "bitsliced",
        [
          Alcotest.test_case "ctz" `Quick test_ctz;
          Alcotest.test_case "bit helpers" `Quick test_bit_helpers;
        ] );
      ( "incremental basis",
        [
          Alcotest.test_case "matches batch RREF" `Quick test_incremental_matches_batch;
          Alcotest.test_case "multiword GF(2)" `Quick test_incremental_multiword_gf2;
          Alcotest.test_case "ragged rows" `Quick test_row_reduce_ragged;
          QCheck_alcotest.to_alcotest prop_incremental_matches_batch;
        ] );
    ]
