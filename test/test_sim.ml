(* The stochastic simulators: conservation laws, agreement with theory,
   agreement between the aggregate and agent-level implementations. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let close ?(tol = 0.1) name expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 1.0 (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.4g got %.4g" name expected actual)
    true (rel < tol)

let stable_params = Scenario.flash_crowd ~k:3 ~lambda:0.5 ~us:0.8 ~mu:1.0 ~gamma:2.0
let transient_params = Scenario.flash_crowd ~k:3 ~lambda:1.0 ~us:0.1 ~mu:1.0 ~gamma:infinity

(* ---- Sim_markov ---- *)

let test_markov_conservation () =
  let stats, final = Sim_markov.run_seeded ~seed:1 (Sim_markov.default_config stable_params)
      ~horizon:2000.0 in
  Alcotest.(check int) "arrivals - departures = final" (stats.arrivals - stats.departures)
    stats.final_n;
  Alcotest.(check int) "state agrees" (State.n final) stats.final_n

let test_markov_stable_returns_to_empty () =
  let stats, _ = Sim_markov.run_seeded ~seed:2 (Sim_markov.default_config stable_params)
      ~horizon:3000.0 in
  Alcotest.(check bool) "visits empty repeatedly" true (stats.visits_to_empty > 5)

let test_markov_transient_grows_at_delta () =
  (* One-club growth rate approx lambda_total - threshold. *)
  let piece = Stability.binding_piece transient_params in
  let delta = Params.lambda_total transient_params -. Stability.threshold transient_params ~piece in
  let club = PS.remove piece (PS.full ~k:3) in
  let config = { (Sim_markov.default_config transient_params) with initial = [ (club, 150) ] } in
  let stats, _ = Sim_markov.run_seeded ~seed:3 config ~horizon:500.0 in
  let fit = Classify.of_samples stats.samples in
  close ~tol:0.25 "growth rate = Delta" delta fit.growth_rate

let test_markov_deterministic_given_seed () =
  let run () = fst (Sim_markov.run_seeded ~seed:42 (Sim_markov.default_config stable_params) ~horizon:300.0) in
  let a = run () and b = run () in
  Alcotest.(check int) "same events" a.events b.events;
  Alcotest.(check int) "same final n" a.final_n b.final_n

let test_markov_no_seed_no_pieces () =
  (* U_s = 0 and empty arrivals only: nobody ever gets a piece. *)
  let p = Params.make ~k:2 ~us:0.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 1.0) ] in
  let stats, final = Sim_markov.run_seeded ~seed:4 (Sim_markov.default_config p) ~horizon:300.0 in
  Alcotest.(check int) "no transfers" 0 stats.transfers;
  Alcotest.(check int) "all still empty-handed" (State.n final) (State.count final PS.empty)

let test_markov_empirical_rates_match_generator () =
  (* Long-run fraction of transfer events by target piece must match the
     generator's Gamma ratios at a frozen state.  We test on a state held
     quasi-constant: large one-club + one gifted uploader, short horizon. *)
  let p = Params.make ~k:2 ~us:1.0 ~mu:1.0 ~gamma:2.0 ~arrivals:[ (PS.empty, 0.01) ] in
  let s = State.of_counts [ (PS.empty, 50); (PS.singleton 0, 50) ] in
  let r0 = Rate.gamma_c_i p s ~c:PS.empty ~piece:0 in
  let r1 = Rate.gamma_c_i p s ~c:PS.empty ~piece:1 in
  (* piece 1 flows from both seed and the 50 {1}-peers; piece 2 only from
     the seed: strong asymmetry the simulator must reproduce. *)
  Alcotest.(check bool) "generator asymmetry" true (r0 > (10.0 *. r1));
  let config =
    { (Sim_markov.default_config p) with initial = [ (PS.empty, 50); (PS.singleton 0, 50) ] }
  in
  let _, final = Sim_markov.run_seeded ~seed:5 config ~horizon:2.0 in
  (* after a short run, far more peers should have gained piece 1 than 2 *)
  let gained_piece0 = State.count final (PS.singleton 0) + State.count final (PS.full ~k:2) in
  let gained_piece1_only = State.count final (PS.singleton 1) in
  Alcotest.(check bool) "piece-1 flow dominates" true (gained_piece0 > 5 * Int.max 1 gained_piece1_only)

let test_markov_policy_changes_dynamics_not_stability () =
  (* Theorem 14: same verdict under every useful policy. *)
  List.iter
    (fun policy ->
      let config = { (Sim_markov.default_config stable_params) with policy } in
      let stats, _ = Sim_markov.run_seeded ~seed:6 config ~horizon:2000.0 in
      let r = Classify.of_samples stats.samples in
      Alcotest.(check string)
        (Printf.sprintf "stable under %s" policy.Policy.name)
        "appears-stable"
        (Classify.verdict_to_string r.verdict))
    [ Policy.random_useful; Policy.rarest_first; Policy.most_common_first; Policy.sequential ]

let test_markov_seed_arrivals () =
  (* lambda_F > 0 (peers arriving as seeds, gamma finite): they dwell
     Exp(gamma) and leave; stationary seed count = lambda_F/gamma by
     Little, and they help drain the swarm meanwhile. *)
  let p =
    Params.make ~k:2 ~us:0.2 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 0.3); (PS.full ~k:2, 0.8) ]
  in
  let seed_avg = P2p_stats.Timeavg.create () in
  let observer ~time ~state =
    P2p_stats.Timeavg.observe seed_avg ~time
      ~value:(float_of_int (State.count state (PS.full ~k:2)))
  in
  let rng = P2p_prng.Rng.of_seed 21 in
  let stats, _ = Sim_markov.run ~observer ~rng (Sim_markov.default_config p) ~horizon:8000.0 in
  Alcotest.(check int) "conservation" (stats.arrivals - stats.departures) stats.final_n;
  (* every peer (arriving seed or completer) passes through the seed
     stage, so E[seeds] = lambda_total / gamma = 1.1 * 0.5 = 0.55 *)
  close ~tol:0.08 "Little's law for the seed stage" 0.55
    (P2p_stats.Timeavg.average seed_avg)

let test_markov_truncation_flag () =
  (* A tiny max_events budget must be reported, not silently absorbed:
     the run freezes at the cap but still claims final_time = horizon. *)
  let config = (Sim_markov.default_config stable_params) in
  let stats, _ = Sim_markov.run_seeded ~seed:9 ~max_events:25 config ~horizon:1000.0 in
  Alcotest.(check bool) "truncated flagged" true stats.truncated;
  Alcotest.(check int) "stopped exactly at the budget" 25 stats.events;
  Alcotest.(check (float 1e-9)) "final_time still reads horizon" 1000.0 stats.final_time;
  (* An untruncated run of the same scenario reports false. *)
  let stats, _ = Sim_markov.run_seeded ~seed:9 config ~horizon:50.0 in
  Alcotest.(check bool) "ample budget not flagged" false stats.truncated

let test_markov_samples_grid () =
  let stats, _ = Sim_markov.run_seeded ~seed:7 ~sample_every:10.0
      (Sim_markov.default_config stable_params) ~horizon:100.0 in
  Alcotest.(check int) "11 grid points" 11 (Array.length stats.samples);
  Array.iteri
    (fun i (t, _) -> Alcotest.(check (float 1e-9)) "grid time" (10.0 *. float_of_int i) t)
    stats.samples

(* ---- Sim_agent ---- *)

let test_agent_conservation () =
  let stats, final = Sim_agent.run_seeded ~seed:8 (Sim_agent.default_config stable_params)
      ~horizon:2000.0 in
  Alcotest.(check int) "arrivals - departures = final" (stats.arrivals - stats.departures)
    stats.final_n;
  Alcotest.(check int) "aggregate state agrees" (State.n final) stats.final_n

let test_agent_matches_markov_mean () =
  (* Same law: time-average populations agree across implementations. *)
  let avg run_fn =
    let w = P2p_stats.Welford.create () in
    for seed = 1 to 12 do
      P2p_stats.Welford.add w (run_fn seed)
    done;
    P2p_stats.Welford.mean w
  in
  let markov seed =
    (fst (Sim_markov.run_seeded ~seed (Sim_markov.default_config stable_params) ~horizon:1500.0))
      .time_avg_n
  in
  let agent seed =
    (fst (Sim_agent.run_seeded ~seed:(seed + 100) (Sim_agent.default_config stable_params)
            ~horizon:1500.0))
      .time_avg_n
  in
  close ~tol:0.12 "same mean population" (avg markov) (avg agent)

let test_agent_groups_partition () =
  let club = PS.of_list [ 1; 2 ] in
  let config = { (Sim_agent.default_config transient_params) with initial = [ (club, 100) ] } in
  let stats, _ = Sim_agent.run_seeded ~seed:9 config ~horizon:200.0 in
  Array.iter
    (fun ((_, g) : float * Sim_agent.groups) ->
      Alcotest.(check bool) "groups partition population" true (Sim_agent.groups_total g >= 0))
    stats.group_samples;
  (* group totals equal the population samples *)
  Array.iteri
    (fun i (t, g) ->
      let t', n = stats.samples.(i) in
      Alcotest.(check (float 1e-9)) "same grid" t t';
      Alcotest.(check int) "partition exact" n (Sim_agent.groups_total g))
    stats.group_samples

let test_agent_one_club_dominates_transient () =
  let club = PS.of_list [ 1; 2 ] in
  let config = { (Sim_agent.default_config transient_params) with initial = [ (club, 150) ] } in
  let stats, _ = Sim_agent.run_seeded ~seed:10 config ~horizon:300.0 in
  Alcotest.(check bool) "one-club fraction near 1" true (stats.one_club_time_fraction > 0.9);
  let _, last = stats.group_samples.(Array.length stats.group_samples - 1) in
  Alcotest.(check bool) "club grew" true (last.one_club > 150)

let test_agent_gifted_tracked () =
  let p =
    Params.make ~k:2 ~us:0.5 ~mu:1.0 ~gamma:2.0
      ~arrivals:[ (PS.empty, 0.5); (PS.singleton 0, 0.5) ]
  in
  let stats, _ = Sim_agent.run_seeded ~seed:11 (Sim_agent.default_config p) ~horizon:300.0 in
  let saw_gifted =
    Array.exists (fun ((_, g) : float * Sim_agent.groups) -> g.gifted > 0) stats.group_samples
  in
  Alcotest.(check bool) "gifted peers observed" true saw_gifted

let test_agent_sojourn_positive () =
  let stats, _ = Sim_agent.run_seeded ~seed:12 (Sim_agent.default_config stable_params)
      ~horizon:1000.0 in
  Alcotest.(check bool) "sojourns recorded" true (stats.sojourn_count > 50);
  Alcotest.(check bool) "mean sojourn sane" true
    (stats.mean_sojourn > 1.0 && stats.mean_sojourn < 100.0)

(* Mean sojourn of a stable swarm should be near K/mu-ish downloads plus
   dwell 1/gamma; sanity via Little's law: N = lambda * T. *)
let test_agent_littles_law () =
  let stats, _ = Sim_agent.run_seeded ~seed:13 (Sim_agent.default_config stable_params)
      ~horizon:4000.0 in
  let lambda = Params.lambda_total stable_params in
  close ~tol:0.15 "Little's law" (lambda *. stats.mean_sojourn) stats.time_avg_n

let test_agent_dwell_distributions_same_mean () =
  (* Deterministic and Erlang dwell with the same mean keep the stable
     system stable with similar populations (insensitivity conjecture). *)
  let base = Sim_agent.default_config stable_params in
  let avg dwell =
    (fst (Sim_agent.run_seeded ~seed:14 { base with dwell } ~horizon:2500.0)).time_avg_n
  in
  let exp_avg = avg Sim_agent.Exp_dwell in
  let det_avg = avg Sim_agent.Deterministic_dwell in
  let erl_avg = avg (Sim_agent.Erlang_dwell 3) in
  close ~tol:0.25 "deterministic dwell similar" exp_avg det_avg;
  close ~tol:0.25 "erlang dwell similar" exp_avg erl_avg

let test_agent_eta_speedup_runs () =
  (* eta > 1 (faster retry after useless contact) should not destabilise a
     clearly stable system. *)
  let config = { (Sim_agent.default_config stable_params) with eta = 10.0 } in
  let stats, _ = Sim_agent.run_seeded ~seed:15 config ~horizon:1500.0 in
  let r = Classify.of_samples stats.samples in
  Alcotest.(check string) "still stable" "appears-stable" (Classify.verdict_to_string r.verdict)

let test_agent_eta_invalid () =
  let config = { (Sim_agent.default_config stable_params) with eta = 0.5 } in
  Alcotest.(check bool) "eta < 1 rejected" true
    (try
       ignore (Sim_agent.run_seeded ~seed:16 config ~horizon:10.0);
       false
     with Invalid_argument _ -> true)

let test_agent_deterministic_given_seed () =
  let run () =
    fst (Sim_agent.run_seeded ~seed:77 (Sim_agent.default_config stable_params) ~horizon:300.0)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same events" a.events b.events;
  Alcotest.(check int) "same transfers" a.transfers b.transfers

let () =
  Alcotest.run "sim"
    [
      ( "markov",
        [
          Alcotest.test_case "conservation" `Quick test_markov_conservation;
          Alcotest.test_case "returns to empty" `Quick test_markov_stable_returns_to_empty;
          Alcotest.test_case "growth = Delta" `Quick test_markov_transient_grows_at_delta;
          Alcotest.test_case "deterministic" `Quick test_markov_deterministic_given_seed;
          Alcotest.test_case "no pieces no transfers" `Quick test_markov_no_seed_no_pieces;
          Alcotest.test_case "rates match generator" `Quick test_markov_empirical_rates_match_generator;
          Alcotest.test_case "policy invariance" `Slow test_markov_policy_changes_dynamics_not_stability;
          Alcotest.test_case "seed arrivals (lambda_F)" `Quick test_markov_seed_arrivals;
          Alcotest.test_case "truncation flag" `Quick test_markov_truncation_flag;
          Alcotest.test_case "sample grid" `Quick test_markov_samples_grid;
        ] );
      ( "agent",
        [
          Alcotest.test_case "conservation" `Quick test_agent_conservation;
          Alcotest.test_case "matches markov" `Slow test_agent_matches_markov_mean;
          Alcotest.test_case "groups partition" `Quick test_agent_groups_partition;
          Alcotest.test_case "one-club dominates" `Quick test_agent_one_club_dominates_transient;
          Alcotest.test_case "gifted tracked" `Quick test_agent_gifted_tracked;
          Alcotest.test_case "sojourn" `Quick test_agent_sojourn_positive;
          Alcotest.test_case "little's law" `Slow test_agent_littles_law;
          Alcotest.test_case "dwell distributions" `Slow test_agent_dwell_distributions_same_mean;
          Alcotest.test_case "eta speedup" `Quick test_agent_eta_speedup_runs;
          Alcotest.test_case "eta invalid" `Quick test_agent_eta_invalid;
          Alcotest.test_case "deterministic" `Quick test_agent_deterministic_given_seed;
        ] );
    ]
