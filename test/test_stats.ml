(* Tests for the statistics substrate: Welford, time averages, regression,
   histograms, quantiles, and the small linear algebra kit. *)

module Welford = P2p_stats.Welford
module Timeavg = P2p_stats.Timeavg
module Regression = P2p_stats.Regression
module Histogram = P2p_stats.Histogram
module Quantile = P2p_stats.Quantile
module Linalg = P2p_stats.Linalg

let closef ?(tol = 1e-9) name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.8g got %.8g" name expected actual)
    true
    (Float.abs (expected -. actual) <= tol *. Float.max 1.0 (Float.abs expected))

(* ---- Welford ---- *)

let test_welford_against_direct () =
  let data = [ 1.5; -2.0; 3.25; 0.0; 7.5; 7.5; -1.0 |> Float.abs ] in
  let w = Welford.create () in
  List.iter (Welford.add w) data;
  let n = float_of_int (List.length data) in
  let mean = List.fold_left ( +. ) 0.0 data /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 data /. (n -. 1.0)
  in
  closef "mean" mean (Welford.mean w);
  closef "variance" var (Welford.variance w);
  Alcotest.(check int) "count" (List.length data) (Welford.count w)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Welford.mean w));
  Alcotest.(check bool) "variance nan" true (Float.is_nan (Welford.variance w))

let test_welford_single () =
  let w = Welford.create () in
  Welford.add w 4.0;
  closef "mean" 4.0 (Welford.mean w);
  Alcotest.(check bool) "variance nan with one point" true (Float.is_nan (Welford.variance w))

let test_welford_minmax () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 3.0; -1.0; 8.0 ];
  closef "min" (-1.0) (Welford.min_value w);
  closef "max" 8.0 (Welford.max_value w)

let test_welford_merge () =
  let a = Welford.create () and b = Welford.create () and whole = Welford.create () in
  let xs = List.init 50 (fun i -> sin (float_of_int i)) in
  let ys = List.init 70 (fun i -> cos (float_of_int i) *. 3.0) in
  List.iter (Welford.add a) xs;
  List.iter (Welford.add b) ys;
  List.iter (Welford.add whole) (xs @ ys);
  let merged = Welford.merge a b in
  closef ~tol:1e-12 "merged mean" (Welford.mean whole) (Welford.mean merged);
  closef ~tol:1e-10 "merged variance" (Welford.variance whole) (Welford.variance merged)

(* Merge algebra the replication runner relies on: empty is an exact
   identity, order does not matter (within float tolerance), and merging
   disjoint halves reproduces the single-pass result. *)

let welford_of xs =
  let w = Welford.create () in
  List.iter (Welford.add w) xs;
  w

let test_welford_merge_empty_identity () =
  let xs = List.init 31 (fun i -> exp (sin (float_of_int i))) in
  let a = welford_of xs and e = Welford.create () in
  List.iter
    (fun (name, m) ->
      Alcotest.(check int) (name ^ ": count") (Welford.count a) (Welford.count m);
      Alcotest.(check bool) (name ^ ": mean exact") true
        (Float.equal (Welford.mean a) (Welford.mean m));
      Alcotest.(check bool) (name ^ ": variance exact") true
        (Float.equal (Welford.variance a) (Welford.variance m));
      Alcotest.(check bool) (name ^ ": min exact") true
        (Float.equal (Welford.min_value a) (Welford.min_value m));
      Alcotest.(check bool) (name ^ ": max exact") true
        (Float.equal (Welford.max_value a) (Welford.max_value m)))
    [ ("right identity", Welford.merge a e); ("left identity", Welford.merge e a) ];
  let ee = Welford.merge e (Welford.create ()) in
  Alcotest.(check int) "empty + empty count" 0 (Welford.count ee);
  Alcotest.(check bool) "empty + empty mean nan" true (Float.is_nan (Welford.mean ee))

let test_welford_merge_order_insensitive () =
  let parts =
    List.init 4 (fun p -> List.init (10 + (7 * p)) (fun i -> cos (float_of_int ((13 * p) + i))))
  in
  let accs = List.map welford_of parts in
  let fwd = List.fold_left Welford.merge (Welford.create ()) accs in
  let rev = List.fold_left Welford.merge (Welford.create ()) (List.rev accs) in
  Alcotest.(check int) "count" (Welford.count fwd) (Welford.count rev);
  closef ~tol:1e-12 "mean" (Welford.mean fwd) (Welford.mean rev);
  closef ~tol:1e-12 "variance" (Welford.variance fwd) (Welford.variance rev);
  Alcotest.(check bool) "min exact" true
    (Float.equal (Welford.min_value fwd) (Welford.min_value rev));
  Alcotest.(check bool) "max exact" true
    (Float.equal (Welford.max_value fwd) (Welford.max_value rev))

let test_welford_merge_halves_vs_single_pass () =
  let xs = List.init 200 (fun i -> (1e6 +. sin (float_of_int i)) *. 0.5) in
  let n = List.length xs / 2 in
  let halves = Welford.merge (welford_of (List.filteri (fun i _ -> i < n) xs))
      (welford_of (List.filteri (fun i _ -> i >= n) xs)) in
  let whole = welford_of xs in
  closef ~tol:1e-12 "mean" (Welford.mean whole) (Welford.mean halves);
  closef ~tol:1e-12 "variance" (Welford.variance whole) (Welford.variance halves);
  Alcotest.(check int) "count" (Welford.count whole) (Welford.count halves)

let test_welford_ci () =
  let w = Welford.create () in
  for i = 1 to 100 do
    Welford.add w (float_of_int (i mod 10))
  done;
  let lo, hi = Welford.confidence_interval w ~z:1.96 in
  Alcotest.(check bool) "CI brackets mean" true (lo < Welford.mean w && Welford.mean w < hi)

(* ---- Timeavg ---- *)

let test_timeavg_piecewise () =
  let t = Timeavg.create () in
  Timeavg.observe t ~time:0.0 ~value:2.0;
  Timeavg.observe t ~time:1.0 ~value:4.0;
  (* 2.0 held 1s *)
  Timeavg.close t ~time:3.0;
  (* 4.0 held 2s *)
  closef "time average" ((2.0 +. 8.0) /. 3.0) (Timeavg.average t);
  closef "elapsed" 3.0 (Timeavg.elapsed t)

let test_timeavg_empty () =
  let t = Timeavg.create () in
  Alcotest.(check bool) "nan before data" true (Float.is_nan (Timeavg.average t))

let test_timeavg_reset () =
  let t = Timeavg.create () in
  Timeavg.observe t ~time:0.0 ~value:100.0;
  Timeavg.observe t ~time:10.0 ~value:1.0;
  Timeavg.reset t ~time:10.0;
  Timeavg.close t ~time:20.0;
  closef "after reset only new segment" 1.0 (Timeavg.average t)

let test_timeavg_single_sample () =
  (* one observation and no elapsed time: the mean is undefined, not 0 *)
  let t = Timeavg.create () in
  Timeavg.observe t ~time:0.0 ~value:7.0;
  Timeavg.close t ~time:0.0;
  Alcotest.(check bool) "nan with zero elapsed" true (Float.is_nan (Timeavg.average t));
  closef "elapsed zero" 0.0 (Timeavg.elapsed t);
  (* once any time passes, a single sample's average is that value *)
  Timeavg.close t ~time:5.0;
  closef "single value held" 7.0 (Timeavg.average t);
  closef "elapsed" 5.0 (Timeavg.elapsed t)

let test_timeavg_close_before_observe () =
  (* closing before the first observation must not count phantom time at
     the (unset) initial value *)
  let t = Timeavg.create () in
  Timeavg.close t ~time:10.0;
  Alcotest.(check bool) "still nan" true (Float.is_nan (Timeavg.average t));
  closef "no time accrued" 0.0 (Timeavg.elapsed t);
  (* a first observation after the idle gap starts the clock there *)
  Timeavg.observe t ~time:10.0 ~value:3.0;
  Timeavg.close t ~time:12.0;
  closef "only post-observation time" 3.0 (Timeavg.average t);
  closef "elapsed from first observation" 2.0 (Timeavg.elapsed t)

let test_timeavg_zero_dwell () =
  (* two observations at the same instant: the first held for 0 time and
     must carry no weight *)
  let t = Timeavg.create () in
  Timeavg.observe t ~time:0.0 ~value:2.0;
  Timeavg.observe t ~time:0.0 ~value:4.0;
  Timeavg.close t ~time:1.0;
  closef "zero-dwell value ignored" 4.0 (Timeavg.average t)

let test_timeavg_backwards () =
  let t = Timeavg.create () in
  Timeavg.observe t ~time:5.0 ~value:1.0;
  Alcotest.(check bool) "raises on time regression" true
    (try
       Timeavg.observe t ~time:1.0 ~value:2.0;
       false
     with Invalid_argument _ -> true)

(* ---- Regression ---- *)

let test_regression_exact_line () =
  let pts = Array.init 20 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  let fit = Regression.fit pts in
  closef "slope" 2.0 fit.slope;
  closef "intercept" 3.0 fit.intercept;
  closef "r2" 1.0 fit.r_squared;
  closef ~tol:1e-6 "stderr 0 on exact fit" 0.0 fit.slope_stderr

let test_regression_noisy () =
  let rng = P2p_prng.Rng.of_seed 4 in
  let pts =
    Array.init 500 (fun i ->
        let x = float_of_int i /. 10.0 in
        (x, 1.0 +. (0.5 *. x) +. P2p_prng.Dist.standard_normal rng))
  in
  let fit = Regression.fit pts in
  Alcotest.(check bool) "slope near 0.5" true (Float.abs (fit.slope -. 0.5) < 0.05);
  Alcotest.(check bool) "t-stat large" true (Regression.slope_t_statistic fit > 10.0)

let test_regression_flat_noise () =
  let rng = P2p_prng.Rng.of_seed 5 in
  let pts =
    Array.init 500 (fun i -> (float_of_int i, P2p_prng.Dist.standard_normal rng))
  in
  let fit = Regression.fit pts in
  Alcotest.(check bool) "no significant slope" true
    (Float.abs (Regression.slope_t_statistic fit) < 4.0)

let test_regression_too_few () =
  Alcotest.(check bool) "needs 3 points" true
    (try
       ignore (Regression.fit [| (0.0, 0.0); (1.0, 1.0) |]);
       false
     with Invalid_argument _ -> true)

(* ---- Histogram ---- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.0; 10.0; 25.0 ];
  Alcotest.(check int) "count" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9)

let test_histogram_mean_exact () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.2; 0.3 ];
  closef "exact mean" 0.2 (Histogram.mean h)

let test_histogram_tail () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 1.0; 2.0; 8.5; 9.5; 100.0 ];
  closef "fraction >= 8" (3.0 /. 5.0) (Histogram.fraction_at_or_above h 8.0)

(* Merge: the pooled-histogram path of the replication runner. *)

let hist_of xs =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Histogram.add h) xs;
  h

let check_hist_equal name a b =
  Alcotest.(check int) (name ^ ": count") (Histogram.count a) (Histogram.count b);
  Alcotest.(check int) (name ^ ": underflow") (Histogram.underflow a) (Histogram.underflow b);
  Alcotest.(check int) (name ^ ": overflow") (Histogram.overflow a) (Histogram.overflow b);
  for i = 0 to 4 do
    Alcotest.(check int)
      (Printf.sprintf "%s: bin %d" name i)
      (Histogram.bin_count a i) (Histogram.bin_count b i)
  done

let test_histogram_merge_binwise () =
  let xs = [ 0.5; 3.3; -2.0; 11.0 ] and ys = [ 3.4; 9.9; 9.8; -1.0; 0.6 ] in
  let m = Histogram.merge (hist_of xs) (hist_of ys) in
  check_hist_equal "pooled = single pass" m (hist_of (xs @ ys));
  closef "pooled mean exact" (Histogram.mean (hist_of (xs @ ys))) (Histogram.mean m)

let test_histogram_merge_empty_identity () =
  let a = hist_of [ 1.0; 2.5; 7.7; 42.0 ] in
  check_hist_equal "right identity" a (Histogram.merge a (hist_of []));
  check_hist_equal "left identity" a (Histogram.merge (hist_of []) a)

let test_histogram_merge_commutative () =
  let a = hist_of [ 0.1; 4.9; 12.0 ] and b = hist_of [ 2.2; 2.3; -5.0 ] in
  check_hist_equal "a+b = b+a" (Histogram.merge a b) (Histogram.merge b a);
  (* counts are integers, so commutativity is exact; the mean accumulator
     commutes too because IEEE addition is commutative *)
  Alcotest.(check bool) "mean commutes exactly" true
    (Float.equal (Histogram.mean (Histogram.merge a b)) (Histogram.mean (Histogram.merge b a)))

let test_histogram_merge_layout_mismatch () =
  let a = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  let raises h = try ignore (Histogram.merge a h); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "different bins" true
    (raises (Histogram.create ~lo:0.0 ~hi:10.0 ~bins:6));
  Alcotest.(check bool) "different lo" true
    (raises (Histogram.create ~lo:1.0 ~hi:10.0 ~bins:5));
  Alcotest.(check bool) "different hi" true
    (raises (Histogram.create ~lo:0.0 ~hi:20.0 ~bins:5))

(* ---- Quantile ---- *)

let test_quantile_order_stats () =
  let q = Quantile.create () in
  List.iter (Quantile.add q) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  closef "median" 3.0 (Quantile.median q);
  closef "min" 1.0 (Quantile.quantile q 0.0);
  closef "max" 5.0 (Quantile.quantile q 1.0);
  closef "q25" 2.0 (Quantile.quantile q 0.25)

let test_quantile_interpolation () =
  let q = Quantile.create () in
  List.iter (Quantile.add q) [ 0.0; 10.0 ];
  closef "q30 interpolates" 3.0 (Quantile.quantile q 0.3)

let test_quantile_add_after_query () =
  let q = Quantile.create () in
  List.iter (Quantile.add q) [ 1.0; 2.0 ];
  ignore (Quantile.median q);
  Quantile.add q 3.0;
  closef "median updates" 2.0 (Quantile.median q);
  Alcotest.(check int) "count" 3 (Quantile.count q)

(* ---- Linalg ---- *)

let test_solve_known_system () =
  (* 2x + y = 5; x - y = 1  =>  x = 2, y = 1 *)
  let a = [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] in
  let x = Linalg.solve a [| 5.0; 1.0 |] in
  closef "x" 2.0 x.(0);
  closef "y" 1.0 x.(1)

let test_solve_needs_pivoting () =
  let a = [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.solve a [| 3.0; 7.0 |] in
  closef "x" 7.0 x.(0);
  closef "y" 3.0 x.(1)

let test_solve_singular () =
  let a = [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Linalg.solve a [| 1.0; 2.0 |]);
       false
     with Failure _ -> true)

let test_inverse () =
  let a = [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linalg.inverse a in
  let prod = Linalg.mat_mul a inv in
  let id = Linalg.identity 2 in
  for i = 0 to 1 do
    for j = 0 to 1 do
      closef ~tol:1e-10 "A A^-1 = I" id.(i).(j) prod.(i).(j)
    done
  done

let test_spectral_radius_diagonal () =
  closef ~tol:1e-6 "diag" 3.0 (Linalg.spectral_radius [| [| 3.0; 0.0 |]; [| 0.0; 2.0 |] |])

let test_spectral_radius_rank_one () =
  (* The paper's ABS mean matrix is rank one: rho = trace. *)
  let m = [| [| 0.2; 2.0 |]; [| 0.05; 0.5 |] |] in
  closef ~tol:1e-6 "rank-one trace" 0.7 (Linalg.spectral_radius m)

let test_matvec_transpose () =
  let a = [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let v = Linalg.mat_vec a [| 1.0; 1.0; 1.0 |] in
  closef "row sums" 6.0 v.(0);
  closef "row sums" 15.0 v.(1);
  let at = Linalg.transpose a in
  Alcotest.(check (pair int int)) "transpose dims" (3, 2) (Linalg.dims at);
  closef "transposed entry" 6.0 at.(2).(1)

(* ---- batch means (appended suite) ---- *)

module Batch_means = P2p_stats.Batch_means

let test_batch_means_iid () =
  (* iid normal noise around 5: the 95% interval should cover the truth
     about 95% of the time and shrink with more data. *)
  let rng = P2p_prng.Rng.of_seed 31 in
  let make n =
    Array.init n (fun i -> (float_of_int i, 5.0 +. P2p_prng.Dist.standard_normal rng))
  in
  let trials = 60 in
  let covered = ref 0 in
  for _ = 1 to trials do
    if Batch_means.contains (Batch_means.of_samples (make 400)) 5.0 then incr covered
  done;
  Alcotest.(check bool)
    (Printf.sprintf "coverage %d/%d" !covered trials)
    true
    (!covered >= trials * 85 / 100);
  let small = Batch_means.of_samples (make 400) in
  let large = Batch_means.of_samples (make 40_000) in
  Alcotest.(check bool) "covers truth (large)" true (Batch_means.contains large 5.0);
  Alcotest.(check bool) "width shrinks" true (large.half_width < small.half_width /. 3.0)

let test_batch_means_correlated_wider () =
  (* strongly autocorrelated AR(1) signal: batch means must widen the
     interval relative to the naive iid standard error. *)
  let rng = P2p_prng.Rng.of_seed 32 in
  let n = 20_000 in
  let x = ref 0.0 in
  let samples =
    Array.init n (fun i ->
        x := (0.995 *. !x) +. P2p_prng.Dist.standard_normal rng;
        (float_of_int i, !x))
  in
  let est = Batch_means.of_samples samples in
  let w = P2p_stats.Welford.create () in
  Array.iter (fun (_, v) -> P2p_stats.Welford.add w v) samples;
  let naive = 1.96 *. P2p_stats.Welford.std_error w in
  Alcotest.(check bool)
    (Printf.sprintf "batch width %.3f > naive %.3f" est.half_width naive)
    true (est.half_width > naive)

let test_batch_means_validation () =
  Alcotest.(check bool) "too few samples" true
    (try
       ignore (Batch_means.of_samples (Array.init 10 (fun i -> (float_of_int i, 0.0))));
       false
     with Invalid_argument _ -> true)

let test_batch_means_warmup_dropped () =
  (* enormous warm-up transient must not contaminate the estimate *)
  let samples =
    Array.init 1000 (fun i ->
        (float_of_int i, if i < 200 then 1000.0 else 2.0))
  in
  let est = Batch_means.of_samples ~warmup_fraction:0.25 samples in
  Alcotest.(check (float 1e-9)) "transient ignored" 2.0 est.mean

let test_batch_means_degenerate_series () =
  (* the shapes a probe grid can produce at the edges: an empty series
     (horizon 0) and a single sample (probe interval longer than the run)
     must raise, not return a confident nonsense interval *)
  let raises samples =
    try
      ignore (Batch_means.of_samples ~warmup_fraction:0.0 samples);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty series raises" true (raises [||]);
  Alcotest.(check bool) "single sample raises" true (raises [| (0.0, 5.0) |]);
  Alcotest.(check bool) "one sample per batch is still too few" true
    (raises (Array.init 16 (fun i -> (float_of_int i, 1.0))))

let test_batch_means_minimum_viable () =
  (* exactly 2 samples per batch with no warm-up is the documented floor:
     it must produce a finite interval, mean equal to the grand mean *)
  let samples = Array.init 32 (fun i -> (float_of_int i, float_of_int (i mod 4))) in
  let est = Batch_means.of_samples ~warmup_fraction:0.0 ~batches:16 samples in
  closef "grand mean" 1.5 est.mean;
  Alcotest.(check int) "batches" 16 est.batches;
  Alcotest.(check bool) "finite width" true (Float.is_finite est.half_width)

let () =
  Alcotest.run "stats"
    [

      ( "welford",
        [
          Alcotest.test_case "against direct" `Quick test_welford_against_direct;
          Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "single" `Quick test_welford_single;
          Alcotest.test_case "minmax" `Quick test_welford_minmax;
          Alcotest.test_case "merge" `Quick test_welford_merge;
          Alcotest.test_case "merge empty identity" `Quick test_welford_merge_empty_identity;
          Alcotest.test_case "merge order insensitive" `Quick test_welford_merge_order_insensitive;
          Alcotest.test_case "merge halves = single pass" `Quick
            test_welford_merge_halves_vs_single_pass;
          Alcotest.test_case "confidence interval" `Quick test_welford_ci;
        ] );
      ( "timeavg",
        [
          Alcotest.test_case "piecewise" `Quick test_timeavg_piecewise;
          Alcotest.test_case "empty" `Quick test_timeavg_empty;
          Alcotest.test_case "single sample" `Quick test_timeavg_single_sample;
          Alcotest.test_case "close before observe" `Quick test_timeavg_close_before_observe;
          Alcotest.test_case "zero dwell" `Quick test_timeavg_zero_dwell;
          Alcotest.test_case "reset" `Quick test_timeavg_reset;
          Alcotest.test_case "time regression" `Quick test_timeavg_backwards;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact line" `Quick test_regression_exact_line;
          Alcotest.test_case "noisy line" `Quick test_regression_noisy;
          Alcotest.test_case "flat noise" `Quick test_regression_flat_noise;
          Alcotest.test_case "too few points" `Quick test_regression_too_few;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "mean exact" `Quick test_histogram_mean_exact;
          Alcotest.test_case "tail" `Quick test_histogram_tail;
          Alcotest.test_case "merge bin-wise" `Quick test_histogram_merge_binwise;
          Alcotest.test_case "merge empty identity" `Quick test_histogram_merge_empty_identity;
          Alcotest.test_case "merge commutative" `Quick test_histogram_merge_commutative;
          Alcotest.test_case "merge layout mismatch" `Quick test_histogram_merge_layout_mismatch;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "order statistics" `Quick test_quantile_order_stats;
          Alcotest.test_case "interpolation" `Quick test_quantile_interpolation;
          Alcotest.test_case "add after query" `Quick test_quantile_add_after_query;
        ] );
      ( "linalg",
        [
          Alcotest.test_case "solve" `Quick test_solve_known_system;
          Alcotest.test_case "pivoting" `Quick test_solve_needs_pivoting;
          Alcotest.test_case "singular" `Quick test_solve_singular;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "spectral radius diag" `Quick test_spectral_radius_diagonal;
          Alcotest.test_case "spectral radius rank one" `Quick test_spectral_radius_rank_one;
          Alcotest.test_case "matvec/transpose" `Quick test_matvec_transpose;
        ] );
    
      ( "batch-means",
        [
          Alcotest.test_case "iid coverage" `Quick test_batch_means_iid;
          Alcotest.test_case "correlated wider" `Quick test_batch_means_correlated_wider;
          Alcotest.test_case "validation" `Quick test_batch_means_validation;
          Alcotest.test_case "warmup" `Quick test_batch_means_warmup_dropped;
          Alcotest.test_case "degenerate series" `Quick test_batch_means_degenerate_series;
          Alcotest.test_case "minimum viable" `Quick test_batch_means_minimum_viable;
        ] );
    ]
