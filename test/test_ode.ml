(* Property tests for the adaptive Dormand–Prince 5(4) stepper (Ode).
   These pin the numerical contract the fluid backend builds on: 5th-order
   convergence, dense-output consistency, exact preservation of linear
   invariants, and deterministic until-bisection. *)

open P2p_core

let feq ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_feq ?eps msg a b =
  if not (feq ?eps a b) then Alcotest.failf "%s: %.17g vs %.17g" msg a b

(* y' = -y, y(0) = 1: y(t) = e^{-t}. *)
let decay _t y = [| -.y.(0) |]

(* Order of convergence: halving h must shrink the endpoint error by
   ~2^5 for a 5th-order method.  Measured over one step from t=0. *)
let test_order_convergence () =
  let ctrl = Ode.default_control in
  let exact h = exp (-.h) in
  let err h =
    let s = Ode.try_step ~f:decay ~control:ctrl ~t:0.0 ~y:[| 1.0 |] ~h in
    Float.abs ((Ode.step_y1 s).(0) -. exact h)
  in
  let e1 = err 0.4 and e2 = err 0.2 in
  let ratio = e1 /. e2 in
  (* 2^5 = 32; demand at least 2^4.5 ~ 22.6 to leave float headroom. *)
  if ratio < 22.6 then
    Alcotest.failf "convergence ratio %.3f below 5th-order expectation (e1=%g e2=%g)" ratio e1 e2

(* Dense output boundary conditions: the interpolant is exact at both
   step endpoints. *)
let test_dense_endpoints () =
  let ctrl = Ode.default_control in
  let s = Ode.try_step ~f:decay ~control:ctrl ~t:0.5 ~y:[| 2.0 |] ~h:0.3 in
  let y1 = Ode.step_y1 s in
  check_feq ~eps:1e-12 "dense at t0" (Ode.step_eval s 0.5).(0) 2.0;
  check_feq ~eps:1e-12 "dense at t1" (Ode.step_eval s 0.8).(0) y1.(0)

(* Dense output mid-step tracks the analytic solution to interpolant
   order. *)
let test_dense_midpoint () =
  let ctrl = Ode.default_control in
  (* The interpolant is 4th order: at h = 0.2 its mid-step error is
     ~1e-7; at h = 0.05 it must fall by ~2^5 per halving. *)
  let mid_err h =
    let s = Ode.try_step ~f:decay ~control:ctrl ~t:0.0 ~y:[| 1.0 |] ~h in
    Float.abs ((Ode.step_eval s (0.5 *. h)).(0) -. exp (-0.5 *. h))
  in
  if mid_err 0.2 > 1e-6 then Alcotest.failf "dense midpoint error %g too large" (mid_err 0.2);
  let ratio = mid_err 0.2 /. mid_err 0.05 in
  if ratio < 100.0 then
    Alcotest.failf "dense midpoint error not shrinking at order (ratio %.1f)" ratio

let test_step_eval_outside_raises () =
  let ctrl = Ode.default_control in
  let s = Ode.try_step ~f:decay ~control:ctrl ~t:0.0 ~y:[| 1.0 |] ~h:0.2 in
  Alcotest.check_raises "before step" (Invalid_argument "dummy")
    (fun () ->
      try ignore (Ode.step_eval s (-0.1)) with Invalid_argument _ ->
        raise (Invalid_argument "dummy"));
  Alcotest.check_raises "after step" (Invalid_argument "dummy")
    (fun () ->
      try ignore (Ode.step_eval s 0.3) with Invalid_argument _ ->
        raise (Invalid_argument "dummy"))

(* Adaptive accuracy on a nonlinear problem: logistic y' = y(1-y),
   y(0)=0.1, y(t) = 1/(1 + 9 e^{-t}). *)
let test_adaptive_accuracy () =
  let f _t y = [| y.(0) *. (1.0 -. y.(0)) |] in
  let ctrl = Ode.control ~rtol:1e-9 ~atol:1e-12 () in
  let s = Ode.session ~control:ctrl ~f ~t0:0.0 ~y0:[| 0.1 |] () in
  (match Ode.advance s ~to_:5.0 with
  | Ode.Reached -> ()
  | _ -> Alcotest.fail "expected Reached");
  let exact = 1.0 /. (1.0 +. (9.0 *. exp (-5.0))) in
  check_feq ~eps:1e-8 "logistic at t=5" (Ode.state s).(0) exact;
  if Ode.steps s <= 0 then Alcotest.fail "no steps accepted";
  if Ode.evals s <= 0 then Alcotest.fail "no evals counted"

(* RK methods preserve linear invariants exactly.  A closed 3-compartment
   flow (rows of the rate matrix sum to 0) keeps the total constant to
   float round-off across thousands of steps. *)
let test_linear_invariant () =
  let f _t y =
    [|
      (-2.0 *. y.(0)) +. (0.5 *. y.(1));
      (2.0 *. y.(0)) -. (1.5 *. y.(1)) +. (0.3 *. y.(2));
      y.(1) -. (0.3 *. y.(2));
    |]
  in
  let y0 = [| 5.0; 1.0; 0.25 |] in
  let total0 = y0.(0) +. y0.(1) +. y0.(2) in
  let ctrl = Ode.control ~rtol:1e-6 ~atol:1e-9 ~max_step:0.05 () in
  let s = Ode.session ~control:ctrl ~f ~t0:0.0 ~y0 () in
  let worst = ref 0.0 in
  let on_step s =
    let y = Ode.state s in
    let t = y.(0) +. y.(1) +. y.(2) in
    worst := Float.max !worst (Float.abs (t -. total0))
  in
  (match Ode.advance ~on_step s ~to_:50.0 with
  | Ode.Reached -> ()
  | _ -> Alcotest.fail "expected Reached");
  if !worst > 1e-10 then
    Alcotest.failf "linear invariant drifted by %g over %d steps" !worst (Ode.steps s)

(* Until-bisection: y' = -y from y(0)=2 crosses y = 1 at t = ln 2, and
   the located stop time must hit it to dense-output accuracy — and be
   bit-identical across runs. *)
let test_until_bisection () =
  let run () =
    (* The crossing is located on the dense interpolant, so its accuracy
       tracks the integration tolerance — run tight. *)
    let ctrl = Ode.control ~rtol:1e-12 ~atol:1e-14 () in
    let s = Ode.session ~control:ctrl ~f:decay ~t0:0.0 ~y0:[| 2.0 |] () in
    match Ode.advance ~until:(fun ~t:_ ~y -> y.(0) <= 1.0) s ~to_:10.0 with
    | Ode.Stopped t -> (t, (Ode.state s).(0))
    | _ -> Alcotest.fail "expected Stopped"
  in
  let t1, y1 = run () in
  let t2, y2 = run () in
  if t1 <> t2 || y1 <> y2 then Alcotest.fail "until stop not deterministic";
  check_feq ~eps:1e-10 "stop time = ln 2" t1 (log 2.0);
  check_feq ~eps:1e-10 "state at stop" y1 1.0;
  (* Time must not overshoot the requested horizon's crossing. *)
  if t1 > 10.0 then Alcotest.fail "stop past horizon"

let test_step_limit () =
  let ctrl = Ode.control ~max_steps:3 ~max_step:0.01 () in
  let s = Ode.session ~control:ctrl ~f:decay ~t0:0.0 ~y0:[| 1.0 |] () in
  match Ode.advance s ~to_:10.0 with
  | Ode.Step_limit ->
      if Ode.steps s <> 3 then Alcotest.failf "expected 3 steps, got %d" (Ode.steps s);
      if Ode.time s >= 10.0 then Alcotest.fail "claimed to reach horizon under step limit"
  | _ -> Alcotest.fail "expected Step_limit"

(* set_rhs swaps the drift mid-run (the fault-toggle path). *)
let test_set_rhs () =
  let s = Ode.session ~f:(fun _t _y -> [| 1.0 |]) ~t0:0.0 ~y0:[| 0.0 |] () in
  (match Ode.advance s ~to_:1.0 with Ode.Reached -> () | _ -> Alcotest.fail "leg 1");
  Ode.set_rhs s (fun _t _y -> [| -1.0 |]);
  (match Ode.advance s ~to_:2.0 with Ode.Reached -> () | _ -> Alcotest.fail "leg 2");
  check_feq ~eps:1e-9 "ramp up then down returns to 0" (Ode.state s).(0) 0.0

let test_bad_arguments () =
  let expect_invalid msg f =
    Alcotest.check_raises msg (Invalid_argument "dummy") (fun () ->
        try ignore (f ()) with Invalid_argument _ -> raise (Invalid_argument "dummy"))
  in
  expect_invalid "rtol <= 0" (fun () -> Ode.control ~rtol:0.0 ());
  expect_invalid "atol nan" (fun () -> Ode.control ~atol:Float.nan ());
  expect_invalid "max_steps 0" (fun () -> Ode.control ~max_steps:0 ());
  expect_invalid "try_step h=0" (fun () ->
      Ode.try_step ~f:decay ~control:Ode.default_control ~t:0.0 ~y:[| 1.0 |] ~h:0.0);
  expect_invalid "try_step h nan" (fun () ->
      Ode.try_step ~f:decay ~control:Ode.default_control ~t:0.0 ~y:[| 1.0 |] ~h:Float.nan);
  expect_invalid "session empty y0" (fun () -> Ode.session ~f:decay ~t0:0.0 ~y0:[||] ());
  expect_invalid "session nan y0" (fun () ->
      Ode.session ~f:decay ~t0:0.0 ~y0:[| Float.nan |] ());
  let s = Ode.session ~f:decay ~t0:0.0 ~y0:[| 1.0 |] () in
  expect_invalid "advance to nan" (fun () -> Ode.advance s ~to_:Float.nan);
  expect_invalid "advance backward" (fun () -> Ode.advance s ~to_:(-1.0))

let () =
  Alcotest.run "ode"
    [
      ( "stepper",
        [
          Alcotest.test_case "order convergence" `Quick test_order_convergence;
          Alcotest.test_case "dense endpoints" `Quick test_dense_endpoints;
          Alcotest.test_case "dense midpoint" `Quick test_dense_midpoint;
          Alcotest.test_case "dense outside raises" `Quick test_step_eval_outside_raises;
        ] );
      ( "session",
        [
          Alcotest.test_case "adaptive accuracy" `Quick test_adaptive_accuracy;
          Alcotest.test_case "linear invariant" `Quick test_linear_invariant;
          Alcotest.test_case "until bisection" `Quick test_until_bisection;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "set_rhs" `Quick test_set_rhs;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
        ] );
    ]
