(* Engine-parity contracts for the coded and network simulators.

   These two simulators gained fault injection, probes, and truncation
   when they moved onto the shared Engine core.  This suite pins the
   guarantees that move demanded:

   - no-fault goldens: with Faults.none and no probe, both simulators
     are bit-identical to the pre-engine loops (goldens captured from a
     baseline build of the old code);
   - probes observe, never perturb: a busy probe leaves every statistic
     bit-identical;
   - probe series are a function of the replication seed alone, so the
     runner's [--jobs] count cannot move them;
   - the [truncated] flag reports the max_events budget honestly;
   - each fault family does physical work (outage time accrues, churn
     conserves peers, total loss stops every delivery). *)

module Rng = P2p_prng.Rng
module Probe = P2p_obs.Probe
module Series = P2p_obs.Series
module Profile = P2p_obs.Profile
module Runner = P2p_runner.Runner
open P2p_core

(* ---- the two pinned workloads ---- *)

let coded_gift =
  { Stability.Coded.q = 4; k = 4; us = 0.8; mu = 1.0; gamma = 2.0;
    lambda0 = 0.5; lambda1 = 0.5 }

let coded_config () = Sim_coded.of_gift coded_gift
let coded_run ?probe ?max_events ~seed () =
  Sim_coded.run_seeded ?probe ?max_events ~seed (coded_config ()) ~horizon:300.0

let network_params = Scenario.flash_crowd ~k:3 ~lambda:0.9 ~us:0.8 ~mu:1.0 ~gamma:2.0
let network_config () = Sim_network.default_config network_params
let network_run ?probe ?max_events ~seed () =
  Sim_network.run_seeded ?probe ?max_events ~seed (network_config ()) ~horizon:500.0

(* ---- no-fault golden bit-identity ----

   Golden values from the pre-engine simulators (same seed, same
   workload, faults = none).  If these move, every published coded or
   network replication result silently changes. *)

let test_golden_no_fault_coded () =
  let s = coded_run ~seed:81 () in
  Alcotest.(check int) "events" 2518 s.events;
  Alcotest.(check int) "arrivals" 285 s.arrivals;
  Alcotest.(check int) "useful" 996 s.useful_transfers;
  Alcotest.(check int) "useless" 615 s.useless_transfers;
  Alcotest.(check int) "completions" 279 s.completions;
  Alcotest.(check int) "departures" 278 s.departures;
  Alcotest.(check int) "final n" 7 s.final_n;
  Alcotest.(check int) "max n" 14 s.max_n;
  Alcotest.(check (array int)) "dim histogram" [| 1; 1; 1; 3; 1 |] s.dim_histogram;
  Alcotest.(check bool)
    (Printf.sprintf "time-avg N %.17g unchanged" s.time_avg_n)
    true
    (Float.equal s.time_avg_n 5.7198239536182562);
  Alcotest.(check bool)
    (Printf.sprintf "near-complete fraction %.17g unchanged" s.near_complete_fraction)
    true
    (Float.equal s.near_complete_fraction 0.3303120498756249);
  Alcotest.(check bool) "not truncated" false s.truncated;
  Alcotest.(check int) "no outage time" 0 (compare s.outage_time 0.0);
  Alcotest.(check int) "no aborts" 0 s.aborted_peers;
  Alcotest.(check int) "no losses" 0 s.lost_transfers

let test_golden_no_fault_network () =
  let s, _ = network_run ~seed:2024 () in
  Alcotest.(check int) "events" 4709 s.events;
  Alcotest.(check int) "arrivals" 461 s.arrivals;
  Alcotest.(check int) "transfers" 1374 s.transfers;
  Alcotest.(check int) "departures" 455 s.departures;
  Alcotest.(check int) "silent contacts" 2419 s.silent_contacts;
  Alcotest.(check int) "final n" 6 s.final_n;
  Alcotest.(check int) "max n" 17 s.max_n;
  Alcotest.(check bool)
    (Printf.sprintf "time-avg N %.17g unchanged" s.time_avg_n)
    true
    (Float.equal s.time_avg_n 6.5988731799098614);
  Alcotest.(check bool) "not truncated" false s.truncated;
  Alcotest.(check int) "no outage time" 0 (compare s.outage_time 0.0);
  Alcotest.(check int) "no aborts" 0 s.aborted_peers;
  Alcotest.(check int) "no losses" 0 s.lost_transfers

let test_golden_no_fault_network_sparse () =
  let config =
    { (network_config ()) with degree = Some 4; choice = Sim_network.Rarest_local }
  in
  let s, _ = Sim_network.run_seeded ~seed:7 config ~horizon:400.0 in
  Alcotest.(check int) "events" 3751 s.events;
  Alcotest.(check int) "arrivals" 362 s.arrivals;
  Alcotest.(check int) "transfers" 1084 s.transfers;
  Alcotest.(check int) "departures" 358 s.departures;
  Alcotest.(check int) "silent contacts" 1947 s.silent_contacts;
  Alcotest.(check int) "final n" 4 s.final_n;
  Alcotest.(check int) "max n" 20 s.max_n;
  Alcotest.(check bool)
    (Printf.sprintf "time-avg N %.17g unchanged" s.time_avg_n)
    true
    (Float.equal s.time_avg_n 6.918622793169261);
  Alcotest.(check bool)
    (Printf.sprintf "mean degree %.17g unchanged" s.mean_degree_time_avg)
    true
    (Float.equal s.mean_degree_time_avg 3.1537276251164026)

(* ---- probes observe, never perturb ---- *)

let busy_probe ~k =
  let series = Series.create ~k in
  let events = ref 0 in
  ( Probe.make ~interval:7.0
      ~on_event:(fun ~time:_ _ -> incr events)
      ~on_sample:(Series.record series)
      ~profile:(Profile.create ()) (),
    events )

let faulty = Faults.make ~outage:(20.0, 5.0) ~abort_rate:0.02 ~loss_prob:0.05 ()

let test_coded_probe_bit_identity () =
  let config = { (coded_config ()) with faults = faulty } in
  let run ?probe () = Sim_coded.run_seeded ?probe ~seed:77 config ~horizon:250.0 in
  let bare = run () in
  let probe, events = busy_probe ~k:4 in
  let probed = run ~probe () in
  Alcotest.(check int) "events" bare.Sim_coded.events probed.Sim_coded.events;
  Alcotest.(check int) "arrivals" bare.Sim_coded.arrivals probed.Sim_coded.arrivals;
  Alcotest.(check int) "useful" bare.Sim_coded.useful_transfers probed.Sim_coded.useful_transfers;
  Alcotest.(check int) "useless" bare.Sim_coded.useless_transfers
    probed.Sim_coded.useless_transfers;
  Alcotest.(check int) "aborted" bare.Sim_coded.aborted_peers probed.Sim_coded.aborted_peers;
  Alcotest.(check int) "lost" bare.Sim_coded.lost_transfers probed.Sim_coded.lost_transfers;
  Alcotest.(check bool) "time_avg_n bit-identical" true
    (Int64.bits_of_float bare.Sim_coded.time_avg_n
    = Int64.bits_of_float probed.Sim_coded.time_avg_n);
  Alcotest.(check bool) "outage_time bit-identical" true
    (Int64.bits_of_float bare.Sim_coded.outage_time
    = Int64.bits_of_float probed.Sim_coded.outage_time);
  Alcotest.(check bool) "near_complete bit-identical" true
    (Int64.bits_of_float bare.Sim_coded.near_complete_fraction
    = Int64.bits_of_float probed.Sim_coded.near_complete_fraction);
  Alcotest.(check bool) "sample grid" true (bare.Sim_coded.samples = probed.Sim_coded.samples);
  Alcotest.(check bool) "the probe actually saw traffic" true (!events > 0)

let test_network_probe_bit_identity () =
  let config = { (network_config ()) with faults = faulty } in
  let run ?probe () = Sim_network.run_seeded ?probe ~seed:77 config ~horizon:250.0 in
  let bare, _ = run () in
  let probe, events = busy_probe ~k:3 in
  let probed, _ = run ~probe () in
  Alcotest.(check int) "events" bare.Sim_network.events probed.Sim_network.events;
  Alcotest.(check int) "arrivals" bare.Sim_network.arrivals probed.Sim_network.arrivals;
  Alcotest.(check int) "transfers" bare.Sim_network.transfers probed.Sim_network.transfers;
  Alcotest.(check int) "silent" bare.Sim_network.silent_contacts
    probed.Sim_network.silent_contacts;
  Alcotest.(check int) "aborted" bare.Sim_network.aborted_peers probed.Sim_network.aborted_peers;
  Alcotest.(check int) "lost" bare.Sim_network.lost_transfers probed.Sim_network.lost_transfers;
  Alcotest.(check bool) "time_avg_n bit-identical" true
    (Int64.bits_of_float bare.Sim_network.time_avg_n
    = Int64.bits_of_float probed.Sim_network.time_avg_n);
  Alcotest.(check bool) "outage_time bit-identical" true
    (Int64.bits_of_float bare.Sim_network.outage_time
    = Int64.bits_of_float probed.Sim_network.outage_time);
  Alcotest.(check bool) "sample grid" true
    (bare.Sim_network.samples = probed.Sim_network.samples);
  Alcotest.(check bool) "club samples" true
    (bare.Sim_network.club_samples = probed.Sim_network.club_samples);
  Alcotest.(check bool) "the probe actually saw traffic" true (!events > 0)

(* ---- probe series are jobs-independent ---- *)

let coded_probe_sweep ~jobs =
  let config = { (coded_config ()) with faults = faulty } in
  let results, _ =
    Runner.run_map ~jobs ~chunk:2 ~master_seed:424242 ~replications:6 (fun ~rng ~index:_ ->
        let series = Series.create ~k:4 in
        let probe = Probe.make ~interval:4.0 ~on_sample:(Series.record series) () in
        let stats = Sim_coded.run ~probe ~rng config ~horizon:100.0 in
        Series.close series ~time:100.0;
        (stats.Sim_coded.events, Series.samples series, Series.avg_n series))
  in
  Array.map Option.get results

let network_probe_sweep ~jobs =
  let config = { (network_config ()) with faults = faulty } in
  let results, _ =
    Runner.run_map ~jobs ~chunk:2 ~master_seed:424242 ~replications:6 (fun ~rng ~index:_ ->
        let series = Series.create ~k:3 in
        let probe = Probe.make ~interval:4.0 ~on_sample:(Series.record series) () in
        let stats, _ = Sim_network.run ~probe ~rng config ~horizon:100.0 in
        Series.close series ~time:100.0;
        (stats.Sim_network.events, Series.samples series, Series.avg_n series))
  in
  Array.map Option.get results

let check_sweeps_equal name seq par =
  Alcotest.(check int) (name ^ " replication count") (Array.length seq) (Array.length par);
  Array.iteri
    (fun i (ev_s, samples_s, avg_s) ->
      let ev_p, samples_p, avg_p = par.(i) in
      Alcotest.(check int) (Printf.sprintf "%s rep %d events" name i) ev_s ev_p;
      Alcotest.(check bool)
        (Printf.sprintf "%s rep %d probe samples" name i)
        true (samples_s = samples_p);
      Alcotest.(check bool)
        (Printf.sprintf "%s rep %d avg_n bit-identical" name i)
        true
        (Int64.bits_of_float avg_s = Int64.bits_of_float avg_p))
    seq

let test_coded_probe_series_jobs_independent () =
  check_sweeps_equal "coded" (coded_probe_sweep ~jobs:1) (coded_probe_sweep ~jobs:4)

let test_network_probe_series_jobs_independent () =
  check_sweeps_equal "network" (network_probe_sweep ~jobs:1) (network_probe_sweep ~jobs:4)

(* ---- the truncated flag ---- *)

let test_truncated_flag_coded () =
  let full = coded_run ~seed:5 () in
  Alcotest.(check bool) "untruncated run says so" false full.truncated;
  let cut = coded_run ~seed:5 ~max_events:60 () in
  Alcotest.(check bool) "budget exhaustion flagged" true cut.truncated;
  Alcotest.(check int) "stopped at the budget" 60 cut.events;
  (* the frozen state is extended to the horizon, biasing time averages *)
  Alcotest.(check bool) "stats closed at the horizon" true (Float.equal cut.final_time 300.0);
  Alcotest.(check int) "population frozen mid-flight" 7 cut.final_n

let test_truncated_flag_network () =
  let full, _ = network_run ~seed:3 () in
  Alcotest.(check bool) "untruncated run says so" false full.truncated;
  let cut, _ = network_run ~seed:3 ~max_events:80 () in
  Alcotest.(check bool) "budget exhaustion flagged" true cut.truncated;
  Alcotest.(check int) "stopped at the budget" 80 cut.events;
  Alcotest.(check bool) "stats closed at the horizon" true (Float.equal cut.final_time 500.0)

(* ---- each fault family does physical work ---- *)

let test_coded_fault_efficacy () =
  let base = coded_config () in
  let outage =
    Sim_coded.run_seeded ~seed:9
      { base with faults = Faults.make ~outage:(20.0, 20.0) () }
      ~horizon:400.0
  in
  Alcotest.(check bool) "outage time accrues" true (outage.outage_time > 0.0);
  Alcotest.(check bool) "outage within horizon" true (outage.outage_time <= 400.0);
  let churn =
    Sim_coded.run_seeded ~seed:9
      { base with faults = Faults.make ~abort_rate:0.3 () }
      ~horizon:400.0
  in
  Alcotest.(check bool) "churn aborts peers" true (churn.aborted_peers > 0);
  Alcotest.(check bool) "aborts are departures" true (churn.aborted_peers <= churn.departures);
  Alcotest.(check int) "conservation of peers" (churn.arrivals - churn.departures) churn.final_n;
  let lossy =
    Sim_coded.run_seeded ~seed:9
      { base with faults = Faults.make ~loss_prob:1.0 () }
      ~horizon:200.0
  in
  Alcotest.(check int) "no delivery survives total loss" 0
    (lossy.useful_transfers + lossy.useless_transfers);
  Alcotest.(check bool) "losses were drawn" true (lossy.lost_transfers > 0);
  Alcotest.(check int) "nobody decodes" 0 lossy.completions

let test_network_fault_efficacy () =
  let base = network_config () in
  let outage, _ =
    Sim_network.run_seeded ~seed:9
      { base with faults = Faults.make ~outage:(20.0, 20.0) () }
      ~horizon:400.0
  in
  Alcotest.(check bool) "outage time accrues" true (outage.outage_time > 0.0);
  Alcotest.(check bool) "outage within horizon" true (outage.outage_time <= 400.0);
  let churn, _ =
    Sim_network.run_seeded ~seed:9
      { base with faults = Faults.make ~abort_rate:0.3 () }
      ~horizon:400.0
  in
  Alcotest.(check bool) "churn aborts peers" true (churn.aborted_peers > 0);
  Alcotest.(check bool) "aborts are departures" true (churn.aborted_peers <= churn.departures);
  Alcotest.(check int) "conservation of peers" (churn.arrivals - churn.departures) churn.final_n;
  let lossy, _ =
    Sim_network.run_seeded ~seed:9
      { base with faults = Faults.make ~loss_prob:1.0 () }
      ~horizon:200.0
  in
  Alcotest.(check int) "no transfer survives total loss" 0 lossy.transfers;
  Alcotest.(check bool) "losses were drawn" true (lossy.lost_transfers > 0)

(* ---- fault schedules are deterministic per seed ---- *)

let test_fault_schedule_deterministic () =
  let config = { (coded_config ()) with faults = faulty } in
  let a = Sim_coded.run_seeded ~seed:2024 config ~horizon:300.0 in
  let b = Sim_coded.run_seeded ~seed:2024 config ~horizon:300.0 in
  Alcotest.(check int) "coded events" a.events b.events;
  Alcotest.(check int) "coded aborted" a.aborted_peers b.aborted_peers;
  Alcotest.(check int) "coded lost" a.lost_transfers b.lost_transfers;
  Alcotest.(check bool) "coded outage bit-identical" true
    (Float.equal a.outage_time b.outage_time);
  let nconfig = { (network_config ()) with faults = faulty } in
  let c, _ = Sim_network.run_seeded ~seed:2024 nconfig ~horizon:300.0 in
  let d, _ = Sim_network.run_seeded ~seed:2024 nconfig ~horizon:300.0 in
  Alcotest.(check int) "network events" c.events d.events;
  Alcotest.(check int) "network aborted" c.aborted_peers d.aborted_peers;
  Alcotest.(check int) "network lost" c.lost_transfers d.lost_transfers;
  Alcotest.(check bool) "network outage bit-identical" true
    (Float.equal c.outage_time d.outage_time)

let () =
  Alcotest.run "engine_parity"
    [
      ( "no-fault goldens",
        [
          Alcotest.test_case "coded golden" `Quick test_golden_no_fault_coded;
          Alcotest.test_case "network golden" `Quick test_golden_no_fault_network;
          Alcotest.test_case "network sparse golden" `Quick test_golden_no_fault_network_sparse;
        ] );
      ( "probe bit-identity",
        [
          Alcotest.test_case "coded probed == unprobed" `Quick test_coded_probe_bit_identity;
          Alcotest.test_case "network probed == unprobed" `Quick
            test_network_probe_bit_identity;
        ] );
      ( "jobs-independence",
        [
          Alcotest.test_case "coded probe series across jobs" `Quick
            test_coded_probe_series_jobs_independent;
          Alcotest.test_case "network probe series across jobs" `Quick
            test_network_probe_series_jobs_independent;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "coded truncated flag" `Quick test_truncated_flag_coded;
          Alcotest.test_case "network truncated flag" `Quick test_truncated_flag_network;
        ] );
      ( "fault efficacy",
        [
          Alcotest.test_case "coded faults act" `Quick test_coded_fault_efficacy;
          Alcotest.test_case "network faults act" `Quick test_network_fault_efficacy;
          Alcotest.test_case "schedules deterministic" `Quick test_fault_schedule_deterministic;
        ] );
    ]
