(* The sharded-engine contract (DESIGN §17):
   - 1 shard ≡ the unsharded path, bit-identical (the goldens' anchor);
   - an N-shard run is deterministic for a fixed shard count: two
     invocations agree bitwise, and the jobs count (domains per window)
     never changes the result;
   - the partition is total: every peer is owned by exactly one shard,
     through arrivals, churn and departures;
   - the per-shard observability merges (hist groups, sample grids,
     Welford sojourns) are associative, so the join order is free. *)

module PS = P2p_pieceset.Pieceset
module Rng = P2p_prng.Rng
module Hist = P2p_obs.Hist
module Welford = P2p_stats.Welford
open P2p_core

let params ?(lambda = 2.0) ?(us = 1.0) ?(gamma = 2.0) () =
  Params.make ~k:3 ~us ~mu:1.0 ~gamma
    ~arrivals:[ (PS.empty, lambda); (PS.singleton 0, 0.5) ]

let markov_config ?(faults = Faults.none) ?(initial = []) () =
  { (Sim_markov.default_config (params ())) with initial; faults }

let agent_config ?(faults = Faults.none) ?(initial = []) () =
  { (Sim_agent.default_config (params ())) with Sim_agent.initial; faults }

let churny_faults = Faults.make ~outage:(4.0, 1.0) ~abort_rate:0.05 ~loss_prob:0.02 ()

let check_samples name a b =
  Alcotest.(check int) (name ^ ": grid length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i (t, n) ->
      let t', n' = b.(i) in
      Alcotest.(check bool) (Printf.sprintf "%s: grid time %d" name i) true (Float.equal t t');
      Alcotest.(check int) (Printf.sprintf "%s: grid value %d" name i) n n')
    a

let check_markov_stats name (a : Sim_markov.stats) (b : Sim_markov.stats) =
  Alcotest.(check bool) (name ^ ": final_time") true (Float.equal a.final_time b.final_time);
  Alcotest.(check int) (name ^ ": events") a.events b.events;
  Alcotest.(check int) (name ^ ": arrivals") a.arrivals b.arrivals;
  Alcotest.(check int) (name ^ ": transfers") a.transfers b.transfers;
  Alcotest.(check int) (name ^ ": completions") a.completions b.completions;
  Alcotest.(check int) (name ^ ": departures") a.departures b.departures;
  Alcotest.(check bool) (name ^ ": time_avg_n") true (Float.equal a.time_avg_n b.time_avg_n);
  Alcotest.(check int) (name ^ ": max_n") a.max_n b.max_n;
  Alcotest.(check int) (name ^ ": final_n") a.final_n b.final_n;
  Alcotest.(check int) (name ^ ": aborted") a.aborted_peers b.aborted_peers;
  Alcotest.(check int) (name ^ ": lost") a.lost_transfers b.lost_transfers;
  Alcotest.(check bool) (name ^ ": outage") true (Float.equal a.outage_time b.outage_time);
  check_samples name a.samples b.samples

(* ---- 1 shard ≡ unsharded ---- *)

let test_one_shard_markov_golden () =
  let config = markov_config ~faults:churny_faults ~initial:[ (PS.empty, 5) ] () in
  let base, base_state = Sim_markov.run_seeded ~seed:42 config ~horizon:80.0 in
  let sh, sh_state, report =
    Sim_markov.run_sharded_seeded ~shards:1 ~seed:42 config ~horizon:80.0
  in
  check_markov_stats "markov shards=1" base sh;
  Alcotest.(check bool) "markov shards=1: state" true (State.equal base_state sh_state);
  Alcotest.(check int) "markov shards=1: visits" base.visits_to_empty sh.visits_to_empty;
  Alcotest.(check int) "report events" base.events report.Sim_markov.shard_events.(0)

let test_one_shard_agent_golden () =
  let config = agent_config ~faults:churny_faults ~initial:[ (PS.singleton 1, 4) ] () in
  let base, base_state = Sim_agent.run_seeded ~seed:7 config ~horizon:60.0 in
  let sh, sh_state, _ = Sim_agent.run_sharded_seeded ~shards:1 ~seed:7 config ~horizon:60.0 in
  Alcotest.(check int) "agent shards=1: events" base.Sim_agent.events sh.Sim_agent.events;
  Alcotest.(check bool) "agent shards=1: time_avg_n" true
    (Float.equal base.Sim_agent.time_avg_n sh.Sim_agent.time_avg_n);
  Alcotest.(check bool) "agent shards=1: one-club fraction" true
    (Float.equal base.Sim_agent.one_club_time_fraction sh.Sim_agent.one_club_time_fraction);
  Alcotest.(check bool) "agent shards=1: sojourn" true
    (Float.equal base.Sim_agent.mean_sojourn sh.Sim_agent.mean_sojourn
    || (Float.is_nan base.Sim_agent.mean_sojourn && Float.is_nan sh.Sim_agent.mean_sojourn));
  Alcotest.(check bool) "agent shards=1: state" true (State.equal base_state sh_state);
  check_samples "agent shards=1" base.Sim_agent.samples sh.Sim_agent.samples

(* ---- N-shard determinism ---- *)

let run_markov_sharded ?jobs () =
  let config = markov_config ~faults:churny_faults ~initial:[ (PS.empty, 12) ] () in
  Sim_markov.run_sharded_seeded ?jobs ~shards:3 ~seed:11 config ~horizon:100.0

let test_nshard_markov_deterministic () =
  let a, sa, ra = run_markov_sharded () in
  let b, sb, rb = run_markov_sharded () in
  check_markov_stats "markov shards=3 rerun" a b;
  Alcotest.(check bool) "state" true (State.equal sa sb);
  Alcotest.(check int) "messages" ra.Sim_markov.cross_messages rb.Sim_markov.cross_messages;
  Alcotest.(check (array int)) "per-shard events" ra.Sim_markov.shard_events
    rb.Sim_markov.shard_events

let test_nshard_markov_jobs_invariant () =
  let a, sa, ra = run_markov_sharded ~jobs:1 () in
  let b, sb, rb = run_markov_sharded ~jobs:3 () in
  check_markov_stats "markov shards=3 jobs" a b;
  Alcotest.(check bool) "state" true (State.equal sa sb);
  Alcotest.(check (array int)) "per-shard events" ra.Sim_markov.shard_events
    rb.Sim_markov.shard_events;
  Alcotest.(check (array int)) "per-shard final n" ra.Sim_markov.shard_final_n
    rb.Sim_markov.shard_final_n

let run_agent_sharded ?jobs () =
  let config = agent_config ~faults:churny_faults ~initial:[ (PS.empty, 10) ] () in
  Sim_agent.run_sharded_seeded ?jobs ~shards:4 ~seed:5 config ~horizon:80.0

let test_nshard_agent_jobs_invariant () =
  let a, sa, ra = run_agent_sharded ~jobs:1 () in
  let b, sb, rb = run_agent_sharded ~jobs:4 () in
  Alcotest.(check int) "events" a.Sim_agent.events b.Sim_agent.events;
  Alcotest.(check int) "transfers" a.Sim_agent.transfers b.Sim_agent.transfers;
  Alcotest.(check bool) "time_avg_n" true
    (Float.equal a.Sim_agent.time_avg_n b.Sim_agent.time_avg_n);
  Alcotest.(check bool) "one-club" true
    (Float.equal a.Sim_agent.one_club_time_fraction b.Sim_agent.one_club_time_fraction);
  Alcotest.(check bool) "state" true (State.equal sa sb);
  check_samples "agent shards=4" a.Sim_agent.samples b.Sim_agent.samples;
  Alcotest.(check (array int)) "per-shard events" ra.Sim_agent.shard_events
    rb.Sim_agent.shard_events

(* ---- partition invariants ---- *)

let test_partition_counts () =
  let shards = 3 in
  let initial = [ (PS.empty, 10); (PS.singleton 0, 7); (PS.of_list [ 0; 1 ], 1) ] in
  let parts = Shard.partition_counts ~shards initial in
  Alcotest.(check int) "array length" shards (Array.length parts);
  (* Disjoint union: summing the per-shard counts recovers the input. *)
  let tbl = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun (c, v) ->
         Alcotest.(check bool) "positive share" true (v > 0);
         Hashtbl.replace tbl c (v + Option.value ~default:0 (Hashtbl.find_opt tbl c))))
    parts;
  List.iter
    (fun (c, v) -> Alcotest.(check int) (PS.to_string c) v (Hashtbl.find tbl c))
    initial;
  (* Balance: shares of one type differ by at most one peer. *)
  let shares =
    Array.map (fun part -> List.fold_left (fun a (_, v) -> a + v) 0 part) parts
  in
  let mn = Array.fold_left Int.min max_int shares
  and mx = Array.fold_left Int.max 0 shares in
  Alcotest.(check bool) "balanced within one per type" true (mx - mn <= List.length initial)

let test_partition_total_population () =
  (* Every peer owned by exactly one shard after churn, arrivals and
     departures: per-shard populations sum to the merged state's, and
     the merged counters balance the population equation. *)
  let config = markov_config ~faults:churny_faults ~initial:[ (PS.empty, 9) ] () in
  let stats, merged, report =
    Sim_markov.run_sharded_seeded ~shards:3 ~seed:23 config ~horizon:120.0
  in
  let part_sum = Array.fold_left ( + ) 0 report.Sim_markov.shard_final_n in
  Alcotest.(check int) "Σ shard populations = merged n" (State.n merged) part_sum;
  Alcotest.(check int) "stats final_n agrees" stats.Sim_markov.final_n part_sum;
  let initial_n = 9 in
  Alcotest.(check int) "population balance"
    (initial_n + stats.Sim_markov.arrivals - stats.Sim_markov.departures)
    part_sum;
  (* The merged state is the disjoint union of the shard states. *)
  let rebuilt =
    State.of_counts
      (List.concat_map State.to_alist (Array.to_list report.Sim_markov.shard_states))
  in
  Alcotest.(check bool) "merged = union of shards" true (State.equal merged rebuilt);
  (* The partition actually ran: more than one shard processed events. *)
  let active =
    Array.fold_left (fun a e -> a + if e > 0 then 1 else 0) 0 report.Sim_markov.shard_events
  in
  Alcotest.(check bool) "several shards active" true (active >= 2)

let test_agent_partition_population () =
  let config = agent_config ~faults:churny_faults ~initial:[ (PS.empty, 8) ] () in
  let stats, merged, report =
    Sim_agent.run_sharded_seeded ~shards:3 ~seed:31 config ~horizon:90.0
  in
  let part_sum = Array.fold_left ( + ) 0 report.Sim_agent.shard_final_n in
  Alcotest.(check int) "Σ shard populations = merged n" (State.n merged) part_sum;
  Alcotest.(check int) "population balance"
    (8 + stats.Sim_agent.arrivals - stats.Sim_agent.departures)
    part_sum

(* ---- merge associativity ---- *)

let test_hist_group_merge_associative () =
  let mk seed names =
    let g = Hist.group () in
    let rng = Rng.of_seed seed in
    List.iter
      (fun name ->
        let h = Hist.get g name in
        for _ = 1 to 100 do
          Hist.record h (Rng.float rng *. 10.0)
        done)
      names;
    g
  in
  let a () = mk 1 [ "x"; "y" ] and b () = mk 2 [ "y"; "z" ] and c () = mk 3 [ "x"; "z" ] in
  (* (a ⊔ b) ⊔ c vs a ⊔ (b ⊔ c), both folded into a fresh group. *)
  let left = Hist.group () in
  let ab = Hist.group () in
  Hist.merge_group_into ~into:ab (a ());
  Hist.merge_group_into ~into:ab (b ());
  Hist.merge_group_into ~into:left ab;
  Hist.merge_group_into ~into:left (c ());
  let right = Hist.group () in
  let bc = Hist.group () in
  Hist.merge_group_into ~into:bc (b ());
  Hist.merge_group_into ~into:bc (c ());
  Hist.merge_group_into ~into:right (a ());
  Hist.merge_group_into ~into:right bc;
  let names g = List.map fst (Hist.hists g) in
  Alcotest.(check (list string)) "same names" (names left) (names right);
  List.iter2
    (fun (n, hl) (_, hr) ->
      Alcotest.(check int) (n ^ ": count") (Hist.count hl) (Hist.count hr);
      Alcotest.(check bool) (n ^ ": sum") true (Float.equal (Hist.sum hl) (Hist.sum hr));
      Alcotest.(check (array int)) (n ^ ": buckets") (Hist.buckets hl) (Hist.buckets hr))
    (Hist.hists left) (Hist.hists right)

let test_welford_merge_associative () =
  let mk seed =
    let w = Welford.create () in
    let rng = Rng.of_seed seed in
    for _ = 1 to 50 do
      Welford.add w (Rng.float rng)
    done;
    w
  in
  let a = mk 10 and b = mk 20 and c = mk 30 in
  let l = Welford.merge (Welford.merge a b) c in
  let r = Welford.merge a (Welford.merge b c) in
  Alcotest.(check int) "count" (Welford.count l) (Welford.count r);
  Alcotest.(check (float 1e-12)) "mean" (Welford.mean l) (Welford.mean r);
  Alcotest.(check (float 1e-9)) "variance" (Welford.variance l) (Welford.variance r)

(* ---- engine-level guards ---- *)

let test_drive_sharded_rejects_one_shard () =
  let config = markov_config () in
  Alcotest.check_raises "shards=0 rejected"
    (Invalid_argument "Sim_markov.run_sharded: shards must be >= 1") (fun () ->
      ignore (Sim_markov.run_sharded_seeded ~shards:0 ~seed:1 config ~horizon:1.0))

let test_sharded_probe_bit_identity () =
  (* A sharded run with per-shard recorders/hists attached takes the
     same draws as a bare one — probes only observe. *)
  let config = markov_config ~faults:churny_faults () in
  let bare, bare_state, _ =
    Sim_markov.run_sharded_seeded ~shards:2 ~seed:9 config ~horizon:60.0
  in
  let groups = Array.init 2 (fun _ -> Hist.group ()) in
  let probes i = P2p_obs.Probe.make ~hists:groups.(i) () in
  let probed, probed_state, _ =
    Sim_markov.run_sharded_seeded ~probes ~shards:2 ~seed:9 config ~horizon:60.0
  in
  check_markov_stats "probed sharded run" bare probed;
  Alcotest.(check bool) "state" true (State.equal bare_state probed_state);
  (* And the per-shard hists saw the shard's contacts. *)
  let merged = Hist.group () in
  Array.iter (fun g -> Hist.merge_group_into ~into:merged g) groups;
  let contact = Hist.get merged "sim_markov/contact" in
  Alcotest.(check bool) "merged contact hist non-empty" true (Hist.count contact >= 0)

let () =
  Alcotest.run "shard"
    [
      ( "one-shard-identity",
        [
          Alcotest.test_case "markov golden" `Quick test_one_shard_markov_golden;
          Alcotest.test_case "agent golden" `Quick test_one_shard_agent_golden;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "markov rerun byte-equal" `Quick test_nshard_markov_deterministic;
          Alcotest.test_case "markov jobs-invariant" `Quick test_nshard_markov_jobs_invariant;
          Alcotest.test_case "agent jobs-invariant" `Quick test_nshard_agent_jobs_invariant;
          Alcotest.test_case "probe bit-identity" `Quick test_sharded_probe_bit_identity;
        ] );
      ( "partition",
        [
          Alcotest.test_case "initial split is a disjoint union" `Quick test_partition_counts;
          Alcotest.test_case "markov ownership total" `Quick test_partition_total_population;
          Alcotest.test_case "agent ownership total" `Quick test_agent_partition_population;
        ] );
      ( "merge-associativity",
        [
          Alcotest.test_case "hist groups" `Quick test_hist_group_merge_associative;
          Alcotest.test_case "welford sojourns" `Quick test_welford_merge_associative;
        ] );
      ( "guards",
        [ Alcotest.test_case "shards=0 rejected" `Quick test_drive_sharded_rejects_one_shard ] );
    ]
