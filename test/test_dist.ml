(* Tests for the distribution samplers, mostly by moment matching. *)

module Rng = P2p_prng.Rng
module Dist = P2p_prng.Dist

let sample_mean_var n f =
  let w = P2p_stats.Welford.create () in
  for _ = 1 to n do
    P2p_stats.Welford.add w (f ())
  done;
  (P2p_stats.Welford.mean w, P2p_stats.Welford.variance w)

let close ?(tol = 0.05) name expected actual =
  let rel = Float.abs (actual -. expected) /. Float.max 1.0 (Float.abs expected) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.4g got %.4g" name expected actual)
    true (rel < tol)

let test_exponential_moments () =
  let rng = Rng.of_seed 1 in
  let mean, var = sample_mean_var 200_000 (fun () -> Dist.exponential rng ~rate:2.0) in
  close "exp mean" 0.5 mean;
  close "exp var" 0.25 var

let test_exponential_positive () =
  let rng = Rng.of_seed 2 in
  for _ = 1 to 10_000 do
    Alcotest.(check bool) "positive" true (Dist.exponential rng ~rate:0.1 > 0.0)
  done

let test_exponential_invalid () =
  let rng = Rng.of_seed 3 in
  Alcotest.check_raises "rate 0" (Invalid_argument "Dist.exponential: rate must be positive")
    (fun () -> ignore (Dist.exponential rng ~rate:0.0))

let test_uniform_moments () =
  let rng = Rng.of_seed 4 in
  let mean, var = sample_mean_var 200_000 (fun () -> Dist.uniform rng ~lo:2.0 ~hi:6.0) in
  close "uniform mean" 4.0 mean;
  close "uniform var" (16.0 /. 12.0) var

let test_geometric_moments () =
  let rng = Rng.of_seed 5 in
  let p = 0.3 in
  let mean, var =
    sample_mean_var 200_000 (fun () -> float_of_int (Dist.geometric rng ~p))
  in
  close "geom mean" ((1.0 -. p) /. p) mean;
  close "geom var" ((1.0 -. p) /. (p *. p)) var

let test_geometric_p_one () =
  let rng = Rng.of_seed 6 in
  Alcotest.(check int) "p=1 gives 0" 0 (Dist.geometric rng ~p:1.0)

let test_negative_binomial_moments () =
  let rng = Rng.of_seed 7 in
  (* successes before r-th failure, success prob p: mean = r p/(1-p). *)
  let r = 4 and p = 0.5 in
  let mean, var =
    sample_mean_var 200_000 (fun () ->
        float_of_int (Dist.negative_binomial rng ~failures:r ~p))
  in
  close "negbin mean" (float_of_int r *. p /. (1.0 -. p)) mean;
  close "negbin var" (float_of_int r *. p /. ((1.0 -. p) ** 2.0)) var

let test_negative_binomial_zero_failures () =
  let rng = Rng.of_seed 8 in
  Alcotest.(check int) "r=0 gives 0" 0 (Dist.negative_binomial rng ~failures:0 ~p:0.7)

(* The paper's coin-flip variable Z (Section VIII-D): heads before the
   (K-1)-th tail of a fair coin; E[Z] = K-1. *)
let test_negative_binomial_is_z () =
  let rng = Rng.of_seed 9 in
  let k = 5 in
  let mean, _ =
    sample_mean_var 100_000 (fun () ->
        float_of_int (Dist.negative_binomial rng ~failures:(k - 1) ~p:0.5))
  in
  close "E[Z] = K-1" (float_of_int (k - 1)) mean

let test_poisson_small_moments () =
  let rng = Rng.of_seed 10 in
  let mean, var = sample_mean_var 200_000 (fun () -> float_of_int (Dist.poisson rng ~mean:3.5)) in
  close "poisson small mean" 3.5 mean;
  close "poisson small var" 3.5 var

let test_poisson_large_moments () =
  let rng = Rng.of_seed 11 in
  let mean, var =
    sample_mean_var 100_000 (fun () -> float_of_int (Dist.poisson rng ~mean:80.0))
  in
  close "poisson large mean" 80.0 mean;
  close "poisson large var" 80.0 var

let test_poisson_zero () =
  let rng = Rng.of_seed 12 in
  Alcotest.(check int) "mean 0" 0 (Dist.poisson rng ~mean:0.0)

let test_binomial_small () =
  let rng = Rng.of_seed 13 in
  let n = 20 and p = 0.4 in
  let mean, var =
    sample_mean_var 100_000 (fun () -> float_of_int (Dist.binomial rng ~n ~p))
  in
  close "binomial mean" (float_of_int n *. p) mean;
  close "binomial var" (float_of_int n *. p *. (1.0 -. p)) var

let test_binomial_large () =
  let rng = Rng.of_seed 14 in
  let n = 500 and p = 0.02 in
  let mean, _ = sample_mean_var 100_000 (fun () -> float_of_int (Dist.binomial rng ~n ~p)) in
  close "binomial large-n mean" (float_of_int n *. p) mean

let test_binomial_extremes () =
  let rng = Rng.of_seed 15 in
  Alcotest.(check int) "p=0" 0 (Dist.binomial rng ~n:10 ~p:0.0);
  Alcotest.(check int) "p=1" 10 (Dist.binomial rng ~n:10 ~p:1.0)

let test_categorical_frequencies () =
  let rng = Rng.of_seed 16 in
  let weights = [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Dist.categorical rng ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      close
        (Printf.sprintf "weight %d" i)
        (weights.(i) /. 10.0)
        (float_of_int c /. float_of_int n))
    counts

let test_categorical_zero_weight_excluded () =
  let rng = Rng.of_seed 17 in
  for _ = 1 to 5000 do
    let i = Dist.categorical rng ~weights:[| 0.0; 1.0; 0.0 |] in
    Alcotest.(check int) "only positive weight" 1 i
  done

let test_categorical_invalid () =
  let rng = Rng.of_seed 18 in
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.categorical: weights must be nonnegative with positive finite sum")
    (fun () -> ignore (Dist.categorical rng ~weights:[| 0.0; 0.0 |]))

let test_discrete_cdf () =
  let cumul = [| 1.0; 3.0; 6.0 |] in
  Alcotest.(check int) "first bin" 0 (Dist.discrete_cdf cumul ~total:6.0 ~u:0.1);
  Alcotest.(check int) "second bin" 1 (Dist.discrete_cdf cumul ~total:6.0 ~u:0.4);
  Alcotest.(check int) "third bin" 2 (Dist.discrete_cdf cumul ~total:6.0 ~u:0.9)

let test_shuffle_permutation () =
  let rng = Rng.of_seed 19 in
  let arr = Array.init 50 (fun i -> i) in
  Dist.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_uniform_first () =
  let rng = Rng.of_seed 20 in
  let counts = Array.make 4 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let arr = [| 0; 1; 2; 3 |] in
    Dist.shuffle_in_place rng arr;
    counts.(arr.(0)) <- counts.(arr.(0)) + 1
  done;
  Array.iter
    (fun c -> close "first position uniform" 0.25 (float_of_int c /. float_of_int n))
    counts

let test_sample_without_replacement () =
  let rng = Rng.of_seed 21 in
  for _ = 1 to 1000 do
    let k = 1 + Rng.int_below rng 10 in
    let n = k + Rng.int_below rng 20 in
    let out = Dist.sample_without_replacement rng ~k ~n in
    Alcotest.(check int) "size" k (Array.length out);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        Alcotest.(check bool) "range" true (x >= 0 && x < n);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen x);
        Hashtbl.add seen x ())
      out
  done

let test_geometric_tiny_p_clamps () =
  let rng = Rng.of_seed 33 in
  (* Below p ~ 1e-16 the inversion quantile is astronomically deep in the
     tail; the sampler must saturate, never return garbage. *)
  Alcotest.(check int) "p=1e-300 saturates" max_int (Dist.geometric rng ~p:1e-300);
  for _ = 1 to 1000 do
    (* p small enough that the quantile can overflow the int range but
       need not: whichever side of the clamp a draw lands on, the result
       must stay a sane nonnegative count. *)
    Alcotest.(check bool) "p=1e-18 stays nonnegative" true (Dist.geometric rng ~p:1e-18 >= 0);
    Alcotest.(check bool) "p=1e-9 stays nonnegative" true (Dist.geometric rng ~p:1e-9 >= 0)
  done

(* ---- Walker alias tables ---- *)

(* Pearson chi-square against the weight vector at the 99.9% level;
   zero-weight cells must be exactly untouched. *)
let chi_square_alias ~name ~weights ~samples =
  let rng = Rng.of_seed (Hashtbl.hash name) in
  let t = Dist.Alias.make weights in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let counts = Array.make (Array.length weights) 0 in
  for _ = 1 to samples do
    let i = Dist.Alias.sample rng t in
    counts.(i) <- counts.(i) + 1
  done;
  let stat = ref 0.0 and df = ref (-1) in
  Array.iteri
    (fun i w ->
      if w > 0.0 then begin
        incr df;
        let e = w /. total *. float_of_int samples in
        let d = float_of_int counts.(i) -. e in
        stat := !stat +. (d *. d /. e)
      end
      else Alcotest.(check int) (name ^ ": zero-weight cell untouched") 0 counts.(i))
    weights;
  (* 99.9% critical values of chi-square for df = 1 .. 8 *)
  let crit = [| nan; 10.83; 13.82; 16.27; 18.47; 20.52; 22.46; 24.32; 26.12 |] in
  Alcotest.(check bool)
    (Printf.sprintf "%s: chi2 %.2f with df %d" name !stat !df)
    true
    (!df >= 1 && !df <= 8 && !stat < crit.(!df))

let test_alias_frequencies () =
  chi_square_alias ~name:"alias 1:2:3:4" ~weights:[| 1.0; 2.0; 3.0; 4.0 |] ~samples:100_000;
  chi_square_alias ~name:"alias skewed" ~weights:[| 0.01; 0.09; 0.9 |] ~samples:100_000;
  chi_square_alias ~name:"alias uniform" ~weights:[| 1.0; 1.0; 1.0; 1.0; 1.0 |]
    ~samples:100_000;
  chi_square_alias ~name:"alias zero cell" ~weights:[| 2.0; 0.0; 1.0; 0.0 |] ~samples:100_000

let test_alias_single_point () =
  (* A one-point table must always answer 0 and consume no randomness:
     an RNG that sampled through it stays in lockstep with a fresh one. *)
  let t = Dist.Alias.make [| 5.0 |] in
  let a = Rng.of_seed 99 and b = Rng.of_seed 99 in
  for _ = 1 to 100 do
    Alcotest.(check int) "one-point" 0 (Dist.Alias.sample a t)
  done;
  Alcotest.(check bool) "no draws consumed" true
    (Int64.equal (Rng.bits64 a) (Rng.bits64 b))

let test_alias_invalid () =
  let invalid name w =
    Alcotest.check_raises name
      (Invalid_argument "Dist.Alias.make: weights must be nonnegative with positive finite sum")
      (fun () -> ignore (Dist.Alias.make w))
  in
  invalid "empty" [||];
  invalid "all zero" [| 0.0; 0.0 |];
  invalid "negative" [| 1.0; -0.5 |];
  invalid "nan" [| 1.0; nan |];
  invalid "infinite" [| 1.0; infinity |]

let test_alias_matches_categorical () =
  (* Same weight vector through both samplers: the empirical frequencies
     must agree cell by cell (draw sequences differ, distributions not). *)
  let weights = [| 3.0; 1.0; 4.0; 1.0; 5.0 |] in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let n = 200_000 in
  let t = Dist.Alias.make weights in
  let ra = Rng.of_seed 123 and rc = Rng.of_seed 321 in
  let ca = Array.make (Array.length weights) 0 and cc = Array.make (Array.length weights) 0 in
  for _ = 1 to n do
    let i = Dist.Alias.sample ra t in
    ca.(i) <- ca.(i) + 1;
    let j = Dist.categorical rc ~weights in
    cc.(j) <- cc.(j) + 1
  done;
  Array.iteri
    (fun i w ->
      let p = w /. total in
      close ~tol:0.02 (Printf.sprintf "alias cell %d" i) p (float_of_int ca.(i) /. float_of_int n);
      close ~tol:0.02
        (Printf.sprintf "categorical cell %d" i)
        p
        (float_of_int cc.(i) /. float_of_int n))
    weights

let test_standard_normal_moments () =
  let rng = Rng.of_seed 22 in
  let mean, var = sample_mean_var 200_000 (fun () -> Dist.standard_normal rng) in
  Alcotest.(check bool) "mean ~ 0" true (Float.abs mean < 0.01);
  close "variance ~ 1" 1.0 var

let () =
  Alcotest.run "dist"
    [
      ( "moments",
        [
          Alcotest.test_case "exponential" `Quick test_exponential_moments;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "exponential invalid" `Quick test_exponential_invalid;
          Alcotest.test_case "uniform" `Quick test_uniform_moments;
          Alcotest.test_case "geometric" `Quick test_geometric_moments;
          Alcotest.test_case "geometric p=1" `Quick test_geometric_p_one;
          Alcotest.test_case "geometric tiny p clamps" `Quick test_geometric_tiny_p_clamps;
          Alcotest.test_case "negative binomial" `Quick test_negative_binomial_moments;
          Alcotest.test_case "negative binomial r=0" `Quick test_negative_binomial_zero_failures;
          Alcotest.test_case "Z of Section VIII-D" `Quick test_negative_binomial_is_z;
          Alcotest.test_case "poisson small" `Quick test_poisson_small_moments;
          Alcotest.test_case "poisson large" `Quick test_poisson_large_moments;
          Alcotest.test_case "poisson zero" `Quick test_poisson_zero;
          Alcotest.test_case "binomial small" `Quick test_binomial_small;
          Alcotest.test_case "binomial large" `Quick test_binomial_large;
          Alcotest.test_case "binomial extremes" `Quick test_binomial_extremes;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "categorical frequencies" `Quick test_categorical_frequencies;
          Alcotest.test_case "categorical zero weight" `Quick test_categorical_zero_weight_excluded;
          Alcotest.test_case "categorical invalid" `Quick test_categorical_invalid;
          Alcotest.test_case "discrete cdf" `Quick test_discrete_cdf;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "shuffle uniform" `Quick test_shuffle_uniform_first;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "standard normal" `Quick test_standard_normal_moments;
        ] );
      ( "alias",
        [
          Alcotest.test_case "frequencies" `Quick test_alias_frequencies;
          Alcotest.test_case "single point" `Quick test_alias_single_point;
          Alcotest.test_case "invalid weights" `Quick test_alias_invalid;
          Alcotest.test_case "matches categorical" `Quick test_alias_matches_categorical;
        ] );
    ]
