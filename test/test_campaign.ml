(* The crash-safe campaign layer: spec round trips, deterministic cell
   geometry, the segment store's recovery discipline, and the headline
   guarantee — a campaign killed at any cell (or torn mid-record) and
   resumed produces a byte-identical merged result store. *)

module Campaign = P2p_campaign.Campaign
module Spec = P2p_campaign.Spec
module Store = P2p_campaign.Store
module Json = P2p_obs.Json
open P2p_core

let ( / ) = Filename.concat

let with_temp_dir f =
  let base = Filename.temp_file "p2p_campaign_test" "" in
  Sys.remove base;
  Unix.mkdir base 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote base))))
    (fun () -> f base)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let grid_spec ?(steps = 10) ?(horizon = 40.0) ?(reps = 1) () =
  {
    Spec.name = "test-grid";
    hypothesis = "H-test: Theorem 1 boundary is visible on a coarse grid";
    k = 2;
    mu = 1.0;
    gamma = infinity;
    horizon;
    reps;
    master_seed = 11;
    policy = "random";
    backend = "markov";
    q = 16;
    shards = 1;
    faults = Faults.none;
    mode =
      Spec.Grid
        {
          lambda = { Spec.lo = 0.3; hi = 2.7; steps };
          us = { Spec.lo = 0.3; hi = 1.8; steps };
        };
  }

let refine_spec () =
  {
    (grid_spec ()) with
    Spec.name = "test-refine";
    mode = Spec.Refine { lambda = (0.3, 2.7); us = (0.3, 1.8); initial = 4; rounds = 2 };
  }

let quiet_opts = { Campaign.default_options with retry_backoff_s = 0.0; checkpoint_every = 7 }

let run_clean dir spec =
  match Campaign.run ~dir quiet_opts spec with
  | Ok o -> o
  | Error msg -> Alcotest.failf "clean run failed: %s" msg

(* ---- spec ---- *)

let test_spec_roundtrip_and_hash () =
  List.iter
    (fun spec ->
      let json = Spec.to_json spec in
      match Spec.of_json json with
      | Error msg -> Alcotest.failf "roundtrip rejected: %s" msg
      | Ok spec' ->
          Alcotest.(check string)
            "canonical encoding survives the round trip"
            (Json.to_string json)
            (Json.to_string (Spec.to_json spec'));
          Alcotest.(check string) "hash stable" (Spec.hash spec) (Spec.hash spec'))
    [ grid_spec (); refine_spec () ];
  (* the hash pins the cell geometry: any parameter change moves it *)
  Alcotest.(check bool) "hash separates specs" true
    (Spec.hash (grid_spec ()) <> Spec.hash { (grid_spec ()) with Spec.master_seed = 12 })

let test_spec_rejects_garbage () =
  let reject label json =
    match Spec.of_json json with
    | Ok _ -> Alcotest.failf "%s accepted" label
    | Error _ -> ()
  in
  let patch field value =
    match Spec.to_json (grid_spec ()) with
    | Json.Obj fields ->
        Json.Obj (List.map (fun (k, v) -> if k = field then (k, value) else (k, v)) fields)
    | _ -> assert false
  in
  reject "wrong schema" (patch "schema" (Json.String "not-a-spec"));
  reject "bad policy" (patch "policy" (Json.String "telepathic"));
  reject "zero reps" (patch "reps" (Json.Int 0));
  reject "negative horizon" (patch "horizon" (Json.Float (-1.0)));
  (match Spec.of_json (Spec.to_json { (grid_spec ()) with Spec.backend = "quantum" }) with
  | Ok _ -> Alcotest.fail "unknown backend accepted"
  | Error _ -> ());
  match Spec.of_json (Spec.to_json { (grid_spec ()) with Spec.backend = "coded"; q = 6 }) with
  | Ok _ -> Alcotest.fail "non-prime-power q accepted"
  | Error _ -> ()

(* ---- coded backend ---- *)

let coded_spec ?(steps = 3) () =
  {
    (grid_spec ~steps ~horizon:30.0 ()) with
    Spec.name = "test-coded";
    backend = "coded";
    q = 4;
    k = 3;
    gamma = 2.0;
  }

(* The default-backend encoding must not mention the new fields at all:
   every pre-PR9 markov spec keeps its hash, and with it its result
   store and resume directory. *)
let test_markov_encoding_unchanged () =
  let json = Spec.to_json (grid_spec ()) in
  Alcotest.(check bool) "no backend field" true (Json.member "backend" json = None);
  Alcotest.(check bool) "no q field" true (Json.member "q" json = None);
  Alcotest.(check bool) "no shards field" true (Json.member "shards" json = None);
  (* and a parsed legacy document defaults to markov *)
  match Spec.of_json json with
  | Error m -> Alcotest.fail m
  | Ok spec ->
      Alcotest.(check string) "default backend" "markov" spec.Spec.backend;
      Alcotest.(check int) "default q" 16 spec.Spec.q;
      Alcotest.(check int) "default shards" 1 spec.Spec.shards

(* Sharded cells: the shards field round-trips, changes the hash only
   when non-default, and the validator enforces the markov + reps = 1
   envelope. *)
let test_sharded_spec () =
  let base = grid_spec ~steps:2 ~reps:1 () in
  let sharded = { base with Spec.shards = 2 } in
  let json = Spec.to_json sharded in
  Alcotest.(check bool) "shards encoded" true
    (Json.member "shards" json = Some (Json.Int 2));
  (match Spec.of_json json with
  | Error m -> Alcotest.failf "sharded roundtrip rejected: %s" m
  | Ok spec' ->
      Alcotest.(check string) "hash stable" (Spec.hash sharded) (Spec.hash spec');
      Alcotest.(check bool) "shards distinguishes hashes" true
        (Spec.hash sharded <> Spec.hash base));
  (match Spec.of_json (Spec.to_json { sharded with Spec.reps = 4 }) with
  | Ok _ -> Alcotest.fail "sharded spec with reps > 1 accepted"
  | Error _ -> ());
  match Spec.of_json (Spec.to_json { (coded_spec ()) with Spec.shards = 2 }) with
  | Ok _ -> Alcotest.fail "sharded coded spec accepted"
  | Error _ -> ()

let test_sharded_campaign_runs () =
  with_temp_dir (fun dir ->
      let spec = { (grid_spec ~steps:2 ~reps:1 ~horizon:40.0 ()) with Spec.shards = 2 } in
      let o = run_clean (dir / "sharded") spec in
      Alcotest.(check bool) "sharded campaign complete" true o.Campaign.complete;
      Alcotest.(check int) "all cells evaluated" 4 o.Campaign.cells_done;
      ignore (run_clean (dir / "again") spec);
      Alcotest.(check string) "sharded store reproducible"
        (read_file (Store.results_path ~dir:(dir / "sharded")))
        (read_file (Store.results_path ~dir:(dir / "again"))))

let test_coded_spec_roundtrip () =
  let spec = coded_spec () in
  let json = Spec.to_json spec in
  Alcotest.(check bool) "backend encoded" true
    (Json.member "backend" json = Some (Json.String "coded"));
  match Spec.of_json json with
  | Error m -> Alcotest.failf "coded roundtrip rejected: %s" m
  | Ok spec' ->
      Alcotest.(check string) "hash stable" (Spec.hash spec) (Spec.hash spec');
      Alcotest.(check bool) "backend distinguishes hashes" true
        (Spec.hash spec <> Spec.hash { spec with Spec.backend = "markov" })

let test_coded_campaign_runs () =
  with_temp_dir (fun dir ->
      let spec = coded_spec () in
      let o = run_clean (dir / "coded") spec in
      Alcotest.(check bool) "coded campaign complete" true o.Campaign.complete;
      Alcotest.(check int) "all cells evaluated" 9 o.Campaign.cells_done;
      (* determinism: a second clean run produces a byte-identical store *)
      ignore (run_clean (dir / "again") spec);
      Alcotest.(check string) "coded store reproducible"
        (read_file (Store.results_path ~dir:(dir / "coded")))
        (read_file (Store.results_path ~dir:(dir / "again")));
      match Json.read_jsonl_file (Store.results_path ~dir:(dir / "coded")) with
      | Error m -> Alcotest.fail m
      | Ok { records; _ } ->
          Alcotest.(check int) "nine records" 9 (List.length records);
          List.iter
            (fun r ->
              (match Json.member "theory" r with
              | Some (Json.String v) ->
                  Alcotest.(check bool) "theory verdict present" true (v <> "")
              | _ -> Alcotest.fail "theory field missing");
              match Json.member "verdict" r with
              | Some (Json.String v) ->
                  Alcotest.(check bool) "simulated verdict definite" true
                    (List.mem v [ "stable"; "unstable"; "inconclusive"; "mixed" ])
              | _ -> Alcotest.fail "verdict field missing")
            records)

(* ---- cells ---- *)

let test_grid_cells_row_major () =
  let spec = grid_spec ~steps:3 () in
  let cells = Spec.round0_cells spec in
  Alcotest.(check int) "3x3 grid" 9 (List.length cells);
  Alcotest.(check (option int)) "grid total known" (Some 9) (Spec.grid_total spec);
  List.iteri
    (fun i (c : Spec.cell) ->
      Alcotest.(check int) "sequential index" i c.index;
      Alcotest.(check int) "round 0" 0 c.round)
    cells;
  let first = List.hd cells in
  Alcotest.(check (float 1e-12)) "first lambda" 0.3 first.lambda;
  Alcotest.(check (float 1e-12)) "first us" 0.3 first.us;
  let last = List.nth cells 8 in
  Alcotest.(check (float 1e-12)) "last lambda" 2.7 last.lambda;
  Alcotest.(check (float 1e-12)) "last us" 1.8 last.us

let test_refine_bisects_disagreeing_edges () =
  let spec = refine_spec () in
  let round0 = Spec.round0_cells spec in
  Alcotest.(check int) "initial 4x4" 16 (List.length round0);
  (* round-0 cells sit at stride 2^rounds = 4 on the fine lattice *)
  List.iter
    (fun (c : Spec.cell) ->
      Alcotest.(check int) "x on coarse lattice" 0 (c.ix mod 4);
      Alcotest.(check int) "y on coarse lattice" 0 (c.iy mod 4))
    round0;
  (* verdict split down the middle of the x axis: only the crossing
     edges bisect, and the derivation is a pure function of verdicts *)
  let verdicts =
    List.map
      (fun (c : Spec.cell) -> ((c.ix, c.iy), if c.ix <= 4 then "stable" else "unstable"))
      round0
  in
  let next = Spec.next_round_cells spec ~round:1 ~verdicts ~next_index:16 in
  Alcotest.(check bool) "the boundary bisects" true (next <> []);
  List.iteri
    (fun i (c : Spec.cell) ->
      Alcotest.(check int) "indices continue" (16 + i) c.index;
      Alcotest.(check int) "round 1" 1 c.round;
      Alcotest.(check int) "midpoints straddle the split" 6 c.ix)
    next;
  let again = Spec.next_round_cells spec ~round:1 ~verdicts ~next_index:16 in
  Alcotest.(check int) "deterministic regeneration" (List.length next) (List.length again);
  List.iter2
    (fun (a : Spec.cell) (b : Spec.cell) ->
      Alcotest.(check bool) "same cell sequence" true (a = b))
    next again;
  (* agreement (or missing verdicts) never bisects *)
  let unanimous = List.map (fun (coord, _) -> (coord, "stable")) verdicts in
  Alcotest.(check int) "no disagreement, no cells" 0
    (List.length (Spec.next_round_cells spec ~round:1 ~verdicts:unanimous ~next_index:16))

let test_cell_seed_deterministic () =
  let spec = grid_spec () in
  let s1 = Campaign.cell_seed spec ~index:7 ~attempt:0 in
  Alcotest.(check int) "pure in (spec, index, attempt)" s1
    (Campaign.cell_seed spec ~index:7 ~attempt:0);
  Alcotest.(check bool) "cells get distinct seeds" true
    (s1 <> Campaign.cell_seed spec ~index:8 ~attempt:0);
  Alcotest.(check bool) "retries get fresh seeds" true
    (s1 <> Campaign.cell_seed spec ~index:7 ~attempt:1)

(* ---- store ---- *)

let test_store_seal_and_finalise () =
  with_temp_dir (fun dir ->
      let store_dir = dir / "store" in
      let spec_json = Json.Obj [ ("name", Json.String "s") ] in
      let store =
        match Store.create ~dir:store_dir ~spec_json ~spec_hash:"h" with
        | Ok s -> s
        | Error m -> Alcotest.fail m
      in
      Store.append store {|{"cell":0}|};
      Store.append store {|{"cell":1}|};
      Store.seal store;
      Store.append store {|{"cell":2}|};
      Store.finalise store;
      Store.close store;
      Alcotest.(check string) "merge is the exact concatenation"
        "{\"cell\":0}\n{\"cell\":1}\n{\"cell\":2}\n"
        (read_file (Store.results_path ~dir:store_dir));
      Alcotest.(check bool) "double create refused" true
        (match Store.create ~dir:store_dir ~spec_json ~spec_hash:"h" with
        | Error _ -> true
        | Ok _ -> false))

let test_store_resume_quarantines_torn_tail () =
  with_temp_dir (fun dir ->
      let store_dir = dir / "store" in
      let spec_json = Json.Obj [ ("name", Json.String "s") ] in
      let store =
        match Store.create ~dir:store_dir ~spec_json ~spec_hash:"h" with
        | Ok s -> s
        | Error m -> Alcotest.fail m
      in
      Store.append store {|{"cell":0}|};
      Store.append store {|{"cell":1}|};
      Store.close store;
      (* tear the last record mid-byte *)
      let active = store_dir / "active.jsonl" in
      let bytes = read_file active in
      let oc = open_out_bin active in
      output_string oc (String.sub bytes 0 (String.length bytes - 4));
      close_out oc;
      match Store.resume ~dir:store_dir with
      | Error m -> Alcotest.fail m
      | Ok (store, _, recovery) ->
          Store.close store;
          Alcotest.(check int) "intact record recovered" 1
            (List.length recovery.Store.records);
          Alcotest.(check bool) "tear measured" true (recovery.Store.quarantined_bytes > 0);
          Alcotest.(check bool) "tear file written" true
            (Array.length (Sys.readdir (store_dir / "quarantine")) = 1);
          (* the rewritten active segment holds only intact lines *)
          Alcotest.(check string) "active segment clean" "{\"cell\":0}\n" (read_file active))

(* ---- kill-and-resume byte identity (the headline guarantee) ---- *)

let crash_at records_target =
  {
    quiet_opts with
    Campaign.fault_hook =
      Some (fun records -> if records >= records_target then raise Campaign.Simulated_crash);
  }

let resume_expect dir opts =
  match Campaign.resume ~dir opts with
  | Ok o -> o
  | Error msg -> Alcotest.failf "resume failed: %s" msg

let crash_then_resume_chain spec dir ~crashes =
  (match
     try
       ignore (Campaign.run ~dir (crash_at (List.hd crashes)) spec);
       `Finished
     with Campaign.Simulated_crash -> `Crashed
   with
  | `Crashed -> ()
  | `Finished -> Alcotest.fail "fault hook never fired");
  List.iter
    (fun target ->
      match
        try
          ignore (resume_expect dir (crash_at target));
          `Finished
        with Campaign.Simulated_crash -> `Crashed
      with
      | `Crashed -> ()
      | `Finished -> Alcotest.failf "fault hook at %d never fired" target)
    (List.tl crashes);
  resume_expect dir quiet_opts

let test_grid_kill_resume_byte_identical () =
  with_temp_dir (fun dir ->
      let spec = grid_spec () in
      let clean = run_clean (dir / "clean") spec in
      Alcotest.(check bool) "clean run complete" true clean.Campaign.complete;
      Alcotest.(check int) "100 cells" 100 clean.Campaign.cells_done;
      (* killed at cells 17, 58 and 99, resumed each time *)
      let survived = crash_then_resume_chain spec (dir / "crashy") ~crashes:[ 17; 58; 99 ] in
      Alcotest.(check bool) "resumed to completion" true survived.Campaign.complete;
      Alcotest.(check int) "same cell count" 100 survived.Campaign.cells_done;
      Alcotest.(check bool) "final resume only ran the remainder" true
        (survived.Campaign.cells_run = 1);
      Alcotest.(check string) "merged store byte-identical"
        (read_file (Store.results_path ~dir:(dir / "clean")))
        (read_file (Store.results_path ~dir:(dir / "crashy"))))

let test_torn_write_resume_byte_identical () =
  with_temp_dir (fun dir ->
      let spec = grid_spec () in
      ignore (run_clean (dir / "clean") spec);
      let crashy = dir / "crashy" in
      (try ignore (Campaign.run ~dir:crashy (crash_at 58) spec)
       with Campaign.Simulated_crash -> ());
      (* SIGKILL mid-append: the last record loses its tail *)
      let active = crashy / "active.jsonl" in
      let bytes = read_file active in
      Alcotest.(check bool) "active segment non-empty at crash" true
        (String.length bytes > 5);
      let oc = open_out_bin active in
      output_string oc (String.sub bytes 0 (String.length bytes - 5));
      close_out oc;
      let survived = resume_expect crashy quiet_opts in
      Alcotest.(check bool) "complete after torn resume" true survived.Campaign.complete;
      Alcotest.(check string) "byte-identical despite the tear"
        (read_file (Store.results_path ~dir:(dir / "clean")))
        (read_file (Store.results_path ~dir:crashy));
      Alcotest.(check bool) "tear quarantined" true
        (Array.length (Sys.readdir (crashy / "quarantine")) = 1);
      match Campaign.status ~dir:crashy with
      | Error m -> Alcotest.fail m
      | Ok json ->
          Alcotest.(check (option int)) "status counts the quarantine" (Some 1)
            (Option.bind (Json.member "quarantined" json) Json.to_int_opt))

let test_refine_kill_resume_byte_identical () =
  with_temp_dir (fun dir ->
      let spec = refine_spec () in
      let clean = run_clean (dir / "clean") spec in
      Alcotest.(check bool) "refine run complete" true clean.Campaign.complete;
      Alcotest.(check bool) "refinement went past round 0" true
        (clean.Campaign.cells_done > 16);
      (* kill inside the adaptive rounds: resume must re-derive the same
         cell sequence from the recorded verdicts *)
      let survived =
        crash_then_resume_chain spec (dir / "crashy")
          ~crashes:[ 10; Int.min 20 (clean.Campaign.cells_done - 1) ]
      in
      Alcotest.(check bool) "resumed to completion" true survived.Campaign.complete;
      Alcotest.(check string) "adaptive store byte-identical"
        (read_file (Store.results_path ~dir:(dir / "clean")))
        (read_file (Store.results_path ~dir:(dir / "crashy")));
      (* and the store really contains refined cells *)
      match Json.read_jsonl_file (Store.results_path ~dir:(dir / "clean")) with
      | Error m -> Alcotest.fail m
      | Ok { records; _ } ->
          let rounds =
            List.filter_map
              (fun r -> Option.bind (Json.member "round" r) Json.to_int_opt)
              records
          in
          Alcotest.(check bool) "a round >= 1 cell exists" true
            (List.exists (fun r -> r >= 1) rounds))

(* ---- failure policy: watchdog timeouts, retry history, abort ---- *)

(* One heavy transient cell (events grow quadratically with the horizon)
   under a microscopic watchdog: every attempt times out cooperatively. *)
let slow_spec =
  {
    (grid_spec ~steps:1 ~horizon:2000.0 ()) with
    Spec.name = "test-slow";
    mode =
      Spec.Grid
        {
          lambda = { Spec.lo = 2.5; hi = 2.5; steps = 1 };
          us = { Spec.lo = 0.3; hi = 0.3; steps = 1 };
        };
  }

let test_cell_timeout_retries_with_history () =
  with_temp_dir (fun dir ->
      let opts =
        {
          quiet_opts with
          Campaign.on_error = P2p_runner.Runner.Retry 2;
          cell_timeout_s = Some 1e-6;
        }
      in
      match Campaign.run ~dir:(dir / "store") opts slow_spec with
      | Error msg -> Alcotest.failf "retry policy must not abort: %s" msg
      | Ok o -> (
          Alcotest.(check bool) "campaign completes around the failure" true o.Campaign.complete;
          Alcotest.(check int) "the cell is recorded failed" 1 o.Campaign.failed;
          match Json.read_jsonl_file (Store.results_path ~dir:(dir / "store")) with
          | Error m -> Alcotest.fail m
          | Ok { records = [ r ]; _ } ->
              let str field =
                match Json.member field r with Some (Json.String s) -> s | _ -> "?"
              in
              let int field =
                match Option.bind (Json.member field r) Json.to_int_opt with
                | Some i -> i
                | None -> -1
              in
              Alcotest.(check string) "status failed" "failed" (str "status");
              Alcotest.(check string) "verdict failed" "failed" (str "verdict");
              Alcotest.(check int) "three attempts (1 + 2 retries)" 3 (int "attempts");
              (match Json.member "errors" r with
              | Some (Json.List errs) ->
                  Alcotest.(check int) "full failure history" 3 (List.length errs);
                  List.iter
                    (fun e ->
                      Alcotest.(check bool) "every failure is the watchdog" true
                        (e = Json.String "timeout"))
                    errs
              | _ -> Alcotest.fail "errors field missing")
          | Ok _ -> Alcotest.fail "expected exactly one record"))

let test_cell_timeout_abort_leaves_resumable_store () =
  with_temp_dir (fun dir ->
      let store_dir = dir / "store" in
      let opts = { quiet_opts with Campaign.cell_timeout_s = Some 1e-6 } in
      (match Campaign.run ~dir:store_dir opts slow_spec with
      | Ok _ -> Alcotest.fail "abort policy must surface the failure"
      | Error msg ->
          Alcotest.(check bool) "error names the timeout" true
            (let rec contains i =
               i + 7 <= String.length msg
               && (String.sub msg i 7 = "timeout" || contains (i + 1))
             in
             contains 0));
      (* the aborted store resumes cleanly once the watchdog is lifted *)
      let o = resume_expect store_dir quiet_opts in
      Alcotest.(check bool) "resumed to completion" true o.Campaign.complete;
      Alcotest.(check int) "no failed cells in the end" 0 o.Campaign.failed)

(* ---- registry ---- *)

let test_registry_entry () =
  with_temp_dir (fun dir ->
      let registry = dir / "registry.jsonl" in
      let opts =
        {
          quiet_opts with
          Campaign.registry = Some registry;
          command = "p2psim campaign run (test)";
        }
      in
      (match Campaign.run ~dir:(dir / "store") opts (grid_spec ~steps:2 ()) with
      | Ok o -> Alcotest.(check bool) "complete" true o.Campaign.complete
      | Error m -> Alcotest.fail m);
      match Json.read_jsonl_file registry with
      | Error m -> Alcotest.fail m
      | Ok { records = [ entry ]; _ } ->
          let str field =
            match Json.member field entry with Some (Json.String s) -> s | _ -> "?"
          in
          Alcotest.(check string) "status" "complete" (str "status");
          Alcotest.(check string) "spec hash recorded" (Spec.hash (grid_spec ~steps:2 ())) (str "spec_hash");
          Alcotest.(check string) "exact command recorded" "p2psim campaign run (test)"
            (str "command");
          Alcotest.(check bool) "hypothesis recorded" true (str "hypothesis" <> "?")
      | Ok _ -> Alcotest.fail "expected exactly one registry entry")

(* ---- the installed binary, interrupted by a real SIGINT ---- *)

(* Resolved relative to this test executable, not the cwd: dune runs
   tests from _build/default/test but tools/check.sh runs them from the
   repo root. *)
let p2psim =
  Filename.dirname Sys.executable_name / Filename.parent_dir_name / "bin" / "p2psim.exe"

let write_spec_file path spec =
  Json.write_file_atomic path (fun oc ->
      Json.to_channel oc (Spec.to_json spec);
      output_char oc '\n')

let run_p2psim args =
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process p2psim (Array.of_list (p2psim :: args)) Unix.stdin devnull devnull
  in
  Unix.close devnull;
  pid

let test_sigint_subprocess_resume () =
  with_temp_dir (fun dir ->
      (* sized so the full sweep takes seconds: SIGINT at ~0.5s lands
         mid-campaign *)
      let spec = grid_spec ~horizon:600.0 () in
      let spec_file = dir / "spec.json" in
      write_spec_file spec_file spec;
      let store = dir / "store" in
      let pid =
        run_p2psim
          [ "campaign"; "run"; spec_file; "--dir"; store; "--jobs"; "2";
            "--checkpoint-every"; "5" ]
      in
      Unix.sleepf 0.5;
      (try Unix.kill pid Sys.sigint with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 3 -> () (* interrupted, checkpointed, resumable *)
      | Unix.WEXITED 0 -> Alcotest.fail "campaign finished before the signal; enlarge the spec"
      | s ->
          Alcotest.failf "unexpected exit: %s"
            (match s with
            | Unix.WEXITED c -> Printf.sprintf "code %d" c
            | Unix.WSIGNALED sg -> Printf.sprintf "signal %d" sg
            | Unix.WSTOPPED sg -> Printf.sprintf "stopped %d" sg));
      Alcotest.(check bool) "no merged results yet" false
        (Sys.file_exists (Store.results_path ~dir:store));
      (* the interrupted store carries a valid checkpoint *)
      (match Campaign.status ~dir:store with
      | Error m -> Alcotest.fail m
      | Ok json ->
          Alcotest.(check bool) "progress was persisted" true
            (match Option.bind (Json.member "cells_done" json) Json.to_int_opt with
            | Some n -> n > 0 && n < 100
            | None -> false));
      (* resume in a subprocess, then compare against a clean in-process run *)
      let pid = run_p2psim [ "campaign"; "resume"; "--dir"; store; "--jobs"; "2" ] in
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | _ -> Alcotest.fail "resume did not complete");
      ignore (run_clean (dir / "clean") spec);
      Alcotest.(check string) "resumed store byte-identical to a clean run"
        (read_file (Store.results_path ~dir:(dir / "clean")))
        (read_file (Store.results_path ~dir:store)))

let () =
  Alcotest.run "campaign"
    [
      ( "spec",
        [
          Alcotest.test_case "roundtrip and hash" `Quick test_spec_roundtrip_and_hash;
          Alcotest.test_case "rejects garbage" `Quick test_spec_rejects_garbage;
          Alcotest.test_case "markov encoding unchanged" `Quick
            test_markov_encoding_unchanged;
          Alcotest.test_case "coded spec roundtrip" `Quick test_coded_spec_roundtrip;
          Alcotest.test_case "sharded spec" `Quick test_sharded_spec;
        ] );
      ( "coded backend",
        [ Alcotest.test_case "grid campaign runs" `Quick test_coded_campaign_runs ] );
      ( "sharded cells",
        [ Alcotest.test_case "grid campaign runs" `Quick test_sharded_campaign_runs ] );
      ( "cells",
        [
          Alcotest.test_case "grid row-major" `Quick test_grid_cells_row_major;
          Alcotest.test_case "refine bisects disagreeing edges" `Quick
            test_refine_bisects_disagreeing_edges;
          Alcotest.test_case "cell seeds deterministic" `Quick test_cell_seed_deterministic;
        ] );
      ( "store",
        [
          Alcotest.test_case "seal and finalise" `Quick test_store_seal_and_finalise;
          Alcotest.test_case "resume quarantines torn tail" `Quick
            test_store_resume_quarantines_torn_tail;
        ] );
      ( "kill-and-resume",
        [
          Alcotest.test_case "grid byte-identical at 17/58/99" `Quick
            test_grid_kill_resume_byte_identical;
          Alcotest.test_case "torn write byte-identical" `Quick
            test_torn_write_resume_byte_identical;
          Alcotest.test_case "adaptive refinement byte-identical" `Quick
            test_refine_kill_resume_byte_identical;
        ] );
      ( "failure policy",
        [
          Alcotest.test_case "timeout retries with history" `Quick
            test_cell_timeout_retries_with_history;
          Alcotest.test_case "abort leaves resumable store" `Quick
            test_cell_timeout_abort_leaves_resumable_store;
        ] );
      ("registry", [ Alcotest.test_case "entry fields" `Quick test_registry_entry ]);
      ( "binary",
        [
          Alcotest.test_case "SIGINT then resume, byte-identical" `Slow
            test_sigint_subprocess_resume;
        ] );
    ]
