(* The fluid (mean-field) limit. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let stable = Scenario.example3 ~lambda1:1.0 ~lambda2:1.0 ~lambda3:1.0 ~mu:1.0 ~gamma:1.5
let transient = Scenario.flash_crowd ~k:3 ~lambda:1.0 ~us:0.1 ~mu:1.0 ~gamma:infinity

let test_of_state () =
  let s = State.of_counts [ (PS.empty, 2); (PS.singleton 1, 3) ] in
  let x = Fluid.of_state ~k:3 s in
  Alcotest.(check int) "dense size" 8 (Array.length x);
  Alcotest.(check (float 1e-12)) "empty slot" 2.0 x.(0);
  Alcotest.(check (float 1e-12)) "{2} slot" 3.0 x.(PS.to_index (PS.singleton 1));
  Alcotest.(check (float 1e-12)) "total" 5.0 (Fluid.total x)

let test_derivative_mass_balance () =
  (* d(total)/dt = lambda_total - gamma x_F (finite gamma, no one at full
     collection departs otherwise). *)
  let x = Fluid.of_state ~k:3 (State.of_counts [ (PS.empty, 5); (PS.full ~k:3, 2) ]) in
  let dx = Fluid.derivative stable x in
  let total_rate = Array.fold_left ( +. ) 0.0 dx in
  Alcotest.(check (float 1e-9)) "mass balance" (3.0 -. (1.5 *. 2.0)) total_rate

let test_derivative_mass_balance_gamma_inf () =
  (* gamma = inf: mass leaves through completions; with nobody one piece
     away, total derivative = lambda exactly. *)
  let x = Fluid.of_state ~k:3 (State.of_counts [ (PS.empty, 5) ]) in
  let dx = Fluid.derivative transient x in
  let total_rate = Array.fold_left ( +. ) 0.0 dx in
  Alcotest.(check (float 1e-9)) "only arrivals" 1.0 total_rate

let test_derivative_matches_generator_drift () =
  (* The fluid RHS is the exact mean drift of the jump process: compare
     against Lyapunov.drift of the per-type count functions. *)
  let s =
    State.of_counts [ (PS.empty, 4); (PS.singleton 0, 3); (PS.of_list [ 0; 1 ], 2) ]
  in
  let x = Fluid.of_state ~k:3 s in
  let dx = Fluid.derivative stable x in
  List.iter
    (fun c ->
      let f st = float_of_int (State.count st (PS.of_index c)) in
      let expected = Lyapunov.drift stable ~f s in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "type %d drift" c)
        expected dx.(c))
    (List.init 8 (fun i -> i))

let test_integrate_records () =
  let init = Fluid.of_state ~k:3 (State.create ()) in
  let traj = Fluid.integrate stable ~init ~dt:0.1 ~horizon:10.0 ~record_every:10 in
  Alcotest.(check bool) "records include end" true
    (Array.length traj.times >= 10);
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 traj.times.(0);
  Alcotest.(check bool) "population grows from empty" true
    (traj.totals.(Array.length traj.totals - 1) > 0.0)

let test_equilibrium_stable () =
  let init = Fluid.of_state ~k:3 (State.create ()) in
  match Fluid.equilibrium stable ~init with
  | None -> Alcotest.fail "expected equilibrium"
  | Some eq ->
      let dx = Fluid.derivative stable eq in
      let norm = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 dx in
      Alcotest.(check bool) "derivative tiny" true (norm < 1e-4);
      Alcotest.(check bool) "finite population" true
        (Fluid.total eq > 1.0 && Fluid.total eq < 100.0)

let test_transient_no_equilibrium () =
  (* Start from a heavy one-club; the transient fluid grows forever. *)
  let club = PS.of_list [ 1; 2 ] in
  let init = Fluid.of_state ~k:3 (State.of_counts [ (club, 100) ]) in
  match Fluid.equilibrium ~horizon:300.0 transient ~init with
  | None -> ()
  | Some eq ->
      Alcotest.failf "unexpected equilibrium with n = %.1f" (Fluid.total eq)

let test_transient_linear_growth () =
  let club = PS.of_list [ 1; 2 ] in
  let init = Fluid.of_state ~k:3 (State.of_counts [ (club, 100) ]) in
  let traj = Fluid.integrate transient ~init ~dt:0.02 ~horizon:200.0 ~record_every:100 in
  let n = Array.length traj.times in
  let pts = Array.init (n / 2) (fun i -> (traj.times.(i + (n / 2)), traj.totals.(i + (n / 2)))) in
  let fit = P2p_stats.Regression.fit pts in
  (* Delta = lambda - threshold = 1 - 0.1 = 0.9 *)
  Alcotest.(check bool)
    (Printf.sprintf "fluid slope %.3f near Delta 0.9" fit.slope)
    true
    (Float.abs (fit.slope -. 0.9) < 0.1)

let test_nonnegativity_preserved () =
  let init = Fluid.of_state ~k:3 (State.of_counts [ (PS.empty, 50) ]) in
  let traj = Fluid.integrate stable ~init ~dt:0.05 ~horizon:50.0 ~record_every:20 in
  Array.iter
    (Array.iter (fun v -> Alcotest.(check bool) "nonnegative" true (v >= 0.0)))
    traj.states

(* The adaptive stepper must land on the same equilibria the fixed-step
   RK4 integrator found.  Values pinned from the pre-RK45 implementation
   (dt = 0.01, tol = 1e-6); agreement within 1e-3 absolute per
   component is well inside both integrators' error. *)
let test_equilibrium_matches_rk4_pinned () =
  let init = Fluid.of_state ~k:3 (State.create ()) in
  match Fluid.equilibrium stable ~init with
  | None -> Alcotest.fail "expected equilibrium"
  | Some eq ->
      let pinned =
        [|
          0.0; 1.12388078582; 1.12388078582; 1.60816963592;
          1.12388078582; 1.60816963592; 1.60816963592; 1.99999972634;
        |]
      in
      Alcotest.(check (float 1e-3)) "total" 10.1961509916 (Fluid.total eq);
      Array.iteri
        (fun i v -> Alcotest.(check (float 1e-3)) (Printf.sprintf "x[%d]" i) v eq.(i))
        pinned

let test_two_chunk_equilibrium_pinned () =
  (* K = 2, lambda = us = mu = 1, gamma = inf: the Norros–Reittu–Eirola
     closed form gives x_0 = 1, x_1 = x_2 = 1/sqrt 2, total 1 + sqrt 2.
     Pinned against the old RK4 run of the same scenario. *)
  let p = Scenario.flash_crowd ~k:2 ~lambda:1.0 ~us:1.0 ~mu:1.0 ~gamma:infinity in
  let init = Fluid.of_state ~k:2 (State.create ()) in
  match Fluid.equilibrium p ~init with
  | None -> Alcotest.fail "expected equilibrium"
  | Some eq ->
      Alcotest.(check (float 1e-3)) "total 1 + sqrt 2" 2.41421277951 (Fluid.total eq);
      Alcotest.(check (float 1e-3)) "x_empty" 1.0 eq.(0);
      Alcotest.(check (float 1e-3)) "x_{1}" (1.0 /. Float.sqrt 2.0) eq.(1);
      Alcotest.(check (float 1e-3)) "x_{2}" (1.0 /. Float.sqrt 2.0) eq.(2)

let test_grid_times_exact () =
  (* Recorded times are exact multiples of dt * record_every (computed as
     float-of-int multiples, not accumulated sums), ending at the horizon. *)
  let init = Fluid.of_state ~k:3 (State.create ()) in
  let traj = Fluid.integrate stable ~init ~dt:0.1 ~horizon:10.0 ~record_every:10 in
  let n = Array.length traj.times in
  Alcotest.(check int) "11 grid points + horizon dedup" 11 n;
  Array.iteri
    (fun i t -> Alcotest.(check (float 0.0)) (Printf.sprintf "grid %d" i) (float_of_int i *. 1.0) t)
    traj.times

let test_bad_arguments () =
  let init = Fluid.of_state ~k:3 (State.create ()) in
  let rejects name f =
    Alcotest.(check bool) name true (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  rejects "wrong size" (fun () -> Fluid.derivative stable (Array.make 3 0.0));
  rejects "dt = 0" (fun () -> Fluid.integrate stable ~init ~dt:0.0 ~horizon:1.0 ~record_every:1);
  rejects "dt < 0" (fun () ->
      Fluid.integrate stable ~init ~dt:(-0.1) ~horizon:1.0 ~record_every:1);
  rejects "dt nan" (fun () ->
      Fluid.integrate stable ~init ~dt:Float.nan ~horizon:1.0 ~record_every:1);
  rejects "horizon nan" (fun () ->
      Fluid.integrate stable ~init ~dt:0.1 ~horizon:Float.nan ~record_every:1);
  rejects "horizon < 0" (fun () ->
      Fluid.integrate stable ~init ~dt:0.1 ~horizon:(-1.0) ~record_every:1);
  rejects "horizon infinite" (fun () ->
      Fluid.integrate stable ~init ~dt:0.1 ~horizon:infinity ~record_every:1);
  rejects "record_every = 0" (fun () ->
      Fluid.integrate stable ~init ~dt:0.1 ~horizon:1.0 ~record_every:0)

let () =
  Alcotest.run "fluid"
    [
      ( "fluid",
        [
          Alcotest.test_case "of_state" `Quick test_of_state;
          Alcotest.test_case "mass balance" `Quick test_derivative_mass_balance;
          Alcotest.test_case "mass balance gamma=inf" `Quick test_derivative_mass_balance_gamma_inf;
          Alcotest.test_case "matches generator drift" `Quick test_derivative_matches_generator_drift;
          Alcotest.test_case "integrate records" `Quick test_integrate_records;
          Alcotest.test_case "equilibrium stable" `Quick test_equilibrium_stable;
          Alcotest.test_case "no equilibrium transient" `Quick test_transient_no_equilibrium;
          Alcotest.test_case "linear growth" `Quick test_transient_linear_growth;
          Alcotest.test_case "nonnegativity" `Quick test_nonnegativity_preserved;
          Alcotest.test_case "equilibrium matches RK4 pinned" `Quick
            test_equilibrium_matches_rk4_pinned;
          Alcotest.test_case "two-chunk equilibrium pinned" `Quick
            test_two_chunk_equilibrium_pinned;
          Alcotest.test_case "grid times exact" `Quick test_grid_times_exact;
          Alcotest.test_case "bad arguments" `Quick test_bad_arguments;
        ] );
    ]
