(* Cross-validation of the fluid backend against the exact CTMC
   simulator, plus the hybrid backend's determinism contract.

   The fluid limit is the law-of-large-numbers approximation of the
   swarm CTMC, so its equilibria and growth rates must match replicated
   Sim_markov statistics — but only up to a finite-size bias of order
   1/N.  Every pinned point below therefore runs in a scaled regime
   (populations from ~75 to ~750) and accepts the fluid value inside
   [mean ± max(6·stderr, 6% relative)]: wide enough for the O(1/N)
   correction at the smallest scale, tight enough that a broken RHS or
   stepper (which shows up as tens of percent) cannot pass.

   The six points span both sides of the Theorem 1 boundary and both
   departure regimes (gamma = inf instant departure, finite gamma seed
   dwell).  On the transient side the fluid from a symmetric start
   converges to a fixed point — the missing-piece instability is a
   symmetry-breaking phenomenon — so the transient points seed a
   one-club and compare asymptotic growth slopes instead. *)

module PS = P2p_pieceset.Pieceset
module Runner = P2p_runner.Runner
open P2p_core

let second_half_mean (samples : (float * int) array) =
  let n = Array.length samples in
  let acc = ref 0.0 and cnt = ref 0 in
  for i = n / 2 to n - 1 do
    acc := !acc +. float_of_int (snd samples.(i));
    incr cnt
  done;
  !acc /. float_of_int !cnt

let second_half_slope (samples : (float * int) array) =
  let n = Array.length samples in
  let pts =
    Array.init
      (n - (n / 2))
      (fun i ->
        let t, v = samples.(i + (n / 2)) in
        (t, float_of_int v))
  in
  (P2p_stats.Regression.fit pts).P2p_stats.Regression.slope

(* Replicated CTMC estimate of [stat] with deterministic seeds. *)
let replicated ?(initial = []) ~reps ~horizon ~stat params =
  let w = P2p_stats.Welford.create () in
  for seed = 1 to reps do
    let stats, _ =
      Sim_markov.run_seeded ~sample_every:(horizon /. 200.0) ~seed
        { (Sim_markov.default_config params) with initial }
        ~horizon
    in
    P2p_stats.Welford.add w (stat stats.Sim_markov.samples)
  done;
  let mean = P2p_stats.Welford.mean w in
  let se = sqrt (P2p_stats.Welford.variance w /. float_of_int reps) in
  (mean, se)

let check_within name ~fluid ~mean ~se =
  let tol = Float.max (6.0 *. se) (0.06 *. Float.abs mean) in
  Alcotest.(check bool)
    (Printf.sprintf "%s: fluid %.4f vs CTMC %.4f ± %.4f (tol %.4f)" name fluid mean se tol)
    true
    (Float.abs (fluid -. mean) <= tol)

(* Stable side: fluid equilibrium total vs the CTMC's steady-state mean
   population (second-half average over replications). *)
let stable_point name ~expect_verdict params =
  Alcotest.(check string) (name ^ " verdict") expect_verdict
    (Stability.verdict_to_string (Stability.classify params));
  let init = Fluid.of_state ~k:params.Params.k (State.create ()) in
  let fluid =
    match Fluid.equilibrium params ~init with
    | Some eq -> Fluid.total eq
    | None -> Alcotest.failf "%s: no fluid equilibrium on the stable side" name
  in
  let mean, se = replicated ~reps:16 ~horizon:300.0 ~stat:second_half_mean params in
  check_within name ~fluid ~mean ~se

(* Transient side: asymptotic growth slope from a one-club-heavy start,
   fluid trajectory vs replicated CTMC paths. *)
let transient_point name ~club ~count params =
  Alcotest.(check string) (name ^ " verdict") "transient"
    (Stability.verdict_to_string (Stability.classify params));
  let initial = [ (club, count) ] in
  let horizon = 200.0 in
  let init = Fluid.of_state ~k:params.Params.k (State.of_counts initial) in
  let traj = Fluid.integrate params ~init ~dt:0.05 ~horizon ~record_every:40 in
  let n = Array.length traj.Fluid.times in
  let pts =
    Array.init
      (n - (n / 2))
      (fun i -> (traj.Fluid.times.(i + (n / 2)), traj.Fluid.totals.(i + (n / 2))))
  in
  let fluid = (P2p_stats.Regression.fit pts).P2p_stats.Regression.slope in
  let mean, se = replicated ~initial ~reps:16 ~horizon ~stat:second_half_slope params in
  check_within name ~fluid ~mean ~se

let test_stable_k2_gamma_inf () =
  stable_point "k=2 λ=40 us=50 γ=∞" ~expect_verdict:"positive-recurrent"
    (Scenario.flash_crowd ~k:2 ~lambda:40.0 ~us:50.0 ~mu:1.0 ~gamma:infinity)

let test_stable_k2_gamma_inf_scaled () =
  stable_point "k=2 λ=400 us=500 γ=∞" ~expect_verdict:"positive-recurrent"
    (Scenario.flash_crowd ~k:2 ~lambda:400.0 ~us:500.0 ~mu:1.0 ~gamma:infinity)

let test_stable_k3_finite_gamma () =
  stable_point "k=3 λ=40 us=60 γ=2" ~expect_verdict:"positive-recurrent"
    (Scenario.flash_crowd ~k:3 ~lambda:40.0 ~us:60.0 ~mu:1.0 ~gamma:2.0)

let test_stable_k3_finite_gamma_scaled () =
  stable_point "k=3 λ=100 us=150 γ=2" ~expect_verdict:"positive-recurrent"
    (Scenario.flash_crowd ~k:3 ~lambda:100.0 ~us:150.0 ~mu:1.0 ~gamma:2.0)

let test_transient_k2_gamma_inf () =
  transient_point "k=2 λ=60 us=50 γ=∞" ~club:(PS.singleton 0) ~count:200
    (Scenario.flash_crowd ~k:2 ~lambda:60.0 ~us:50.0 ~mu:1.0 ~gamma:infinity)

let test_transient_k3_finite_gamma () =
  transient_point "k=3 λ=120 us=50 γ=2" ~club:(PS.of_list [ 0; 1 ]) ~count:500
    (Scenario.flash_crowd ~k:3 ~lambda:120.0 ~us:50.0 ~mu:1.0 ~gamma:2.0)

(* The two-chunk closed form (Norros–Reittu–Eirola): for K = 2 with
   empty arrivals and gamma = inf, the symmetric equilibrium y = x_{1} =
   x_{2} solves  2μ²y² + 3μ(us−λ)y + us² − 2λus = 0  and the empty
   density is  x_0 = y(us + μy)/(us/2 + μy).  Checked off the boundary
   at λ = 0.8, us = 1.2 — an algebraic prediction the integrator has to
   reproduce, not a pinned number from a previous implementation. *)
let test_two_chunk_closed_form () =
  let lambda = 0.8 and us = 1.2 and mu = 1.0 in
  let p = Scenario.flash_crowd ~k:2 ~lambda ~us ~mu ~gamma:infinity in
  let a = 2.0 *. mu *. mu in
  let b = 3.0 *. mu *. (us -. lambda) in
  let c = (us *. us) -. (2.0 *. lambda *. us) in
  let y = ((-.b) +. sqrt ((b *. b) -. (4.0 *. a *. c))) /. (2.0 *. a) in
  let x0 = y *. (us +. (mu *. y)) /. ((us /. 2.0) +. (mu *. y)) in
  let init = Fluid.of_state ~k:2 (State.create ()) in
  match Fluid.equilibrium p ~init with
  | None -> Alcotest.fail "expected equilibrium"
  | Some eq ->
      Alcotest.(check (float 1e-4)) "x_empty closed form" x0 eq.(0);
      Alcotest.(check (float 1e-4)) "x_{1} closed form" y eq.(1);
      Alcotest.(check (float 1e-4)) "x_{2} closed form" y eq.(2);
      Alcotest.(check (float 1e-4)) "total closed form" (x0 +. (2.0 *. y)) (Fluid.total eq)

(* ---- hybrid determinism ---- *)

let hybrid_config () =
  let params = Scenario.flash_crowd ~k:2 ~lambda:40.0 ~us:50.0 ~mu:1.0 ~gamma:infinity in
  Sim_hybrid.default_config ~up:95 ~down:80 (Sim_markov.default_config params)

let test_hybrid_deterministic_rerun () =
  let config = hybrid_config () in
  let run () = Sim_hybrid.run_seeded ~seed:7 config ~horizon:60.0 in
  let s1, x1 = run () in
  let s2, x2 = run () in
  Alcotest.(check bool) "switch count > 0" true (List.length s1.Sim_hybrid.switches > 0);
  List.iter2
    (fun (a : Sim_hybrid.switch) (b : Sim_hybrid.switch) ->
      Alcotest.(check (float 0.0)) "switch time bit-identical" a.at b.at;
      Alcotest.(check bool) "switch direction" a.to_fluid b.to_fluid;
      Alcotest.(check (float 0.0)) "switch population bit-identical" a.n b.n)
    s1.switches s2.switches;
  Alcotest.(check (float 0.0)) "final time" s1.final_time s2.final_time;
  Alcotest.(check (float 0.0)) "time-avg N" s1.time_avg_n s2.time_avg_n;
  Alcotest.(check (float 0.0)) "final N" s1.final_n s2.final_n;
  Alcotest.(check int) "events" s1.events s2.events;
  Alcotest.(check bool) "samples bit-identical" true (s1.samples = s2.samples);
  Alcotest.(check bool) "final state bit-identical" true (x1 = x2)

let test_hybrid_deterministic_across_jobs () =
  (* The replication runner's determinism contract extends to the hybrid
     backend: merged statistics are bit-identical at any --jobs. *)
  let config = hybrid_config () in
  let sweep jobs =
    Runner.run_summary ~jobs ~metrics:[ "time-avg N"; "final N" ] ~master_seed:11
      ~replications:8 (fun ~rng ~index:_ ->
        let stats, _ = Sim_hybrid.run ~rng config ~horizon:40.0 in
        Runner.rep [| stats.Sim_hybrid.time_avg_n; stats.Sim_hybrid.final_n |])
  in
  let s1 = sweep 1 and s2 = sweep 2 in
  List.iter2
    (fun (name, w1) (_, w2) ->
      Alcotest.(check (float 0.0))
        (name ^ " merged mean bit-identical across jobs")
        (P2p_stats.Welford.mean w1) (P2p_stats.Welford.mean w2))
    s1.Runner.stats s2.Runner.stats

let test_hybrid_samples_monotone () =
  (* One continuous sampling grid across all segments: times strictly
     increase through every handoff. *)
  let config = hybrid_config () in
  let stats, _ = Sim_hybrid.run_seeded ~seed:3 config ~horizon:60.0 in
  Alcotest.(check bool) "has switches" true (stats.Sim_hybrid.switches <> []);
  let times = Array.map fst stats.Sim_hybrid.samples in
  for i = 1 to Array.length times - 1 do
    Alcotest.(check bool) "strictly increasing grid" true (times.(i) > times.(i - 1))
  done

(* ---- the stochastic side of the handoff: until / resume ---- *)

let test_markov_until_and_resume () =
  let params = Scenario.flash_crowd ~k:2 ~lambda:40.0 ~us:50.0 ~mu:1.0 ~gamma:infinity in
  let config = Sim_markov.default_config params in
  let rng = P2p_prng.Rng.of_seed 5 in
  let stats, st =
    Sim_markov.run ~rng ~sample_every:1.0 ~until:(fun ~time:_ ~n -> n >= 50) config
      ~horizon:1000.0
  in
  Alcotest.(check bool) "stopped" true stats.Sim_markov.stopped;
  Alcotest.(check bool) "stopped early" true (stats.Sim_markov.final_time < 1000.0);
  Alcotest.(check int) "stopped at the threshold" 50 (State.n st);
  (* Resume from the stop point: the clock and the sampling grid
     continue where the first segment left off. *)
  let last_sample = fst stats.samples.(Array.length stats.samples - 1) in
  let resume =
    { Engine.t0 = stats.Sim_markov.final_time; grid_after = last_sample; frun = None }
  in
  let initial =
    List.filter_map
      (fun set ->
        let c = State.count st set in
        if c > 0 then Some (set, c) else None)
      (List.init 4 (fun i -> PS.of_index i))
  in
  let stats2, _ =
    Sim_markov.run ~rng ~sample_every:1.0 ~resume
      { config with initial }
      ~horizon:(stats.Sim_markov.final_time +. 5.0)
  in
  Alcotest.(check bool) "clock resumes" true
    (stats2.Sim_markov.final_time >= stats.Sim_markov.final_time);
  Array.iter
    (fun (t, _) ->
      Alcotest.(check bool) "grid continues past the first segment" true (t > last_sample))
    stats2.Sim_markov.samples

let () =
  Alcotest.run "fluid-validation"
    [
      ( "cross-validation",
        [
          Alcotest.test_case "stable k=2 γ=∞" `Quick test_stable_k2_gamma_inf;
          Alcotest.test_case "stable k=2 γ=∞ scaled" `Quick test_stable_k2_gamma_inf_scaled;
          Alcotest.test_case "stable k=3 γ=2" `Quick test_stable_k3_finite_gamma;
          Alcotest.test_case "stable k=3 γ=2 scaled" `Quick test_stable_k3_finite_gamma_scaled;
          Alcotest.test_case "transient k=2 γ=∞" `Quick test_transient_k2_gamma_inf;
          Alcotest.test_case "transient k=3 γ=2" `Quick test_transient_k3_finite_gamma;
          Alcotest.test_case "two-chunk closed form" `Quick test_two_chunk_closed_form;
        ] );
      ( "hybrid determinism",
        [
          Alcotest.test_case "bit-identical rerun" `Quick test_hybrid_deterministic_rerun;
          Alcotest.test_case "bit-identical across jobs" `Quick
            test_hybrid_deterministic_across_jobs;
          Alcotest.test_case "monotone sample grid" `Quick test_hybrid_samples_monotone;
          Alcotest.test_case "markov until/resume" `Quick test_markov_until_and_resume;
        ] );
    ]
