(* Tests for the xoshiro256** generator. *)

module Rng = P2p_prng.Rng

let check = Alcotest.check
let checkf = Alcotest.check (Alcotest.float 1e-9)

let test_determinism () =
  let a = Rng.of_seed 42 and b = Rng.of_seed 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.of_seed 1 and b = Rng.of_seed 2 in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "different seeds diverge" true (!matches < 3)

let test_copy_independent () =
  let a = Rng.of_seed 7 in
  let b = Rng.copy a in
  check Alcotest.int64 "copy same next" (Rng.bits64 a) (Rng.bits64 b);
  ignore (Rng.bits64 a);
  (* advancing a does not advance b; resync check *)
  let x = Rng.bits64 a and y = Rng.bits64 b in
  Alcotest.(check bool) "streams now offset" true (x <> y)

let test_split_decorrelates () =
  let parent = Rng.of_seed 99 in
  let child = Rng.split parent in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr matches
  done;
  Alcotest.(check bool) "child stream distinct" true (!matches < 3)

let test_seed_pair_deterministic () =
  let a = Rng.of_seed_pair ~master:42 ~stream:17 in
  let b = Rng.of_seed_pair ~master:42 ~stream:17 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_pair_streams_decorrelate () =
  (* Adjacent stream indices of the same master must look independent —
     the replication runner hands stream i to replication i. *)
  let a = Rng.of_seed_pair ~master:7 ~stream:0 in
  let b = Rng.of_seed_pair ~master:7 ~stream:1 in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "adjacent streams diverge" true (!matches < 3)

let test_seed_pair_masters_decorrelate () =
  let a = Rng.of_seed_pair ~master:1 ~stream:5 in
  let b = Rng.of_seed_pair ~master:2 ~stream:5 in
  let matches = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr matches
  done;
  Alcotest.(check bool) "same stream, different masters diverge" true (!matches < 3)

let test_seed_pair_mean_uniform () =
  (* Pool one draw from each of many streams: cross-stream output should
     still be uniform, not clustered by the derivation. *)
  let acc = ref 0.0 in
  let n = 20_000 in
  for i = 0 to n - 1 do
    acc := !acc +. Rng.float (Rng.of_seed_pair ~master:3 ~stream:i)
  done;
  Alcotest.(check bool) "cross-stream mean near 1/2" true
    (Float.abs ((!acc /. float_of_int n) -. 0.5) < 0.01)

let test_float_range () =
  let rng = Rng.of_seed 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_float_pos_range () =
  let rng = Rng.of_seed 6 in
  for _ = 1 to 10_000 do
    let x = Rng.float_pos rng in
    Alcotest.(check bool) "in (0,1]" true (x > 0.0 && x <= 1.0)
  done

let test_float_mean () =
  let rng = Rng.of_seed 8 in
  let acc = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_below_bounds () =
  let rng = Rng.of_seed 9 in
  for _ = 1 to 10_000 do
    let x = Rng.int_below rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done

let test_int_below_uniform () =
  let rng = Rng.of_seed 10 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Rng.int_below rng 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "frequency near 1/5" true (Float.abs (freq -. 0.2) < 0.01))
    counts

let test_int_below_one () =
  let rng = Rng.of_seed 11 in
  check Alcotest.int "n=1 gives 0" 0 (Rng.int_below rng 1)

let test_int_below_invalid () =
  let rng = Rng.of_seed 12 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int_below: bound must be positive")
    (fun () -> ignore (Rng.int_below rng 0))

let test_int_in_range () =
  let rng = Rng.of_seed 13 in
  for _ = 1 to 1000 do
    let x = Rng.int_in_range rng ~lo:(-3) ~hi:4 in
    Alcotest.(check bool) "in [-3,4]" true (x >= -3 && x <= 4)
  done

let test_bool_balance () =
  let rng = Rng.of_seed 14 in
  let heads = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bool rng then incr heads
  done;
  let freq = float_of_int !heads /. float_of_int n in
  Alcotest.(check bool) "fair coin" true (Float.abs (freq -. 0.5) < 0.01)

let test_bernoulli_extremes () =
  let rng = Rng.of_seed 15 in
  Alcotest.(check bool) "p=1 true" true (Rng.bernoulli rng ~p:1.0);
  Alcotest.(check bool) "p=0 false" false (Rng.bernoulli rng ~p:0.0)

let test_bernoulli_rate () =
  let rng = Rng.of_seed 16 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.3 frequency" true (Float.abs (freq -. 0.3) < 0.01)

let test_jump_changes_state () =
  let a = Rng.of_seed 21 in
  let b = Rng.copy a in
  Rng.jump a;
  Alcotest.(check bool) "jumped stream differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_pp_stable () =
  let rng = Rng.of_seed 1 in
  let s1 = Format.asprintf "%a" Rng.pp rng in
  let s2 = Format.asprintf "%a" Rng.pp (Rng.of_seed 1) in
  check Alcotest.string "pp deterministic" s1 s2

let () =
  ignore checkf;
  Alcotest.run "rng"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_decorrelates;
          Alcotest.test_case "seed pair determinism" `Quick test_seed_pair_deterministic;
          Alcotest.test_case "seed pair streams" `Quick test_seed_pair_streams_decorrelate;
          Alcotest.test_case "seed pair masters" `Quick test_seed_pair_masters_decorrelate;
          Alcotest.test_case "seed pair uniform" `Quick test_seed_pair_mean_uniform;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float_pos range" `Quick test_float_pos_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "int_below bounds" `Quick test_int_below_bounds;
          Alcotest.test_case "int_below uniform" `Quick test_int_below_uniform;
          Alcotest.test_case "int_below n=1" `Quick test_int_below_one;
          Alcotest.test_case "int_below invalid" `Quick test_int_below_invalid;
          Alcotest.test_case "int_in_range" `Quick test_int_in_range;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "jump" `Quick test_jump_changes_state;
          Alcotest.test_case "pp stable" `Quick test_pp_stable;
        ] );
    ]
