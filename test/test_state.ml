(* The type-count state vector. *)

module PS = P2p_pieceset.Pieceset
open P2p_core

let test_empty () =
  let s = State.create () in
  Alcotest.(check int) "n" 0 (State.n s);
  Alcotest.(check int) "occupied" 0 (State.occupied s);
  Alcotest.(check int) "count of anything" 0 (State.count s PS.empty)

let test_add_remove () =
  let s = State.create () in
  State.add_peer s PS.empty;
  State.add_peer s PS.empty;
  State.add_peer s (PS.singleton 1);
  Alcotest.(check int) "n" 3 (State.n s);
  Alcotest.(check int) "count empty" 2 (State.count s PS.empty);
  State.remove_peer s PS.empty;
  Alcotest.(check int) "after remove" 1 (State.count s PS.empty);
  State.remove_peer s PS.empty;
  Alcotest.(check int) "zero drops type" 1 (State.occupied s);
  Alcotest.(check bool) "remove from empty raises" true
    (try
       State.remove_peer s PS.empty;
       false
     with Invalid_argument _ -> true)

let test_move () =
  let s = State.of_counts [ (PS.empty, 1) ] in
  State.move_peer s ~from_:PS.empty ~to_:(PS.singleton 0);
  Alcotest.(check int) "n preserved" 1 (State.n s);
  Alcotest.(check int) "target" 1 (State.count s (PS.singleton 0));
  Alcotest.(check int) "source" 0 (State.count s PS.empty)

let test_of_counts () =
  let s = State.of_counts [ (PS.empty, 2); (PS.empty, 3); (PS.singleton 0, 0) ] in
  Alcotest.(check int) "summed duplicates" 5 (State.count s PS.empty);
  Alcotest.(check int) "zero dropped" 1 (State.occupied s);
  Alcotest.(check bool) "negative raises" true
    (try
       ignore (State.of_counts [ (PS.empty, -1) ]);
       false
     with Invalid_argument _ -> true)

let test_copy_isolated () =
  let s = State.of_counts [ (PS.empty, 2) ] in
  let t = State.copy s in
  State.add_peer t PS.empty;
  Alcotest.(check int) "original" 2 (State.n s);
  Alcotest.(check int) "copy" 3 (State.n t)

let test_alist_sorted () =
  let s = State.of_counts [ (PS.singleton 2, 1); (PS.empty, 1); (PS.singleton 0, 1) ] in
  let types = List.map fst (State.to_alist s) in
  Alcotest.(check (list int)) "sorted by bitmask" [ 0; 1; 4 ] (List.map PS.to_index types)

let test_piece_counts () =
  let s = State.of_counts [ (PS.of_list [ 0; 1 ], 2); (PS.singleton 1, 3); (PS.empty, 1) ] in
  Alcotest.(check int) "piece 0 copies" 2 (State.piece_copies s ~k:3 ~piece:0);
  Alcotest.(check int) "piece 1 copies" 5 (State.piece_copies s ~k:3 ~piece:1);
  Alcotest.(check int) "piece 2 copies" 0 (State.piece_copies s ~k:3 ~piece:2);
  Alcotest.(check (array int)) "vector" [| 2; 5; 0 |] (State.piece_count_vector s ~k:3)

let test_subset_helpful_counts () =
  let s =
    State.of_counts [ (PS.empty, 1); (PS.singleton 0, 2); (PS.of_list [ 0; 1 ], 4); (PS.singleton 2, 8) ]
  in
  (* E_S for S = {0,1}: empty + {0} + {0,1} = 7; helpers: {2} = 8. *)
  let sset = PS.of_list [ 0; 1 ] in
  Alcotest.(check int) "E_S" 7 (State.count_subset_peers s sset);
  Alcotest.(check int) "x_{H_S}" 8 (State.count_helpful_peers s sset);
  Alcotest.(check int) "partition" (State.n s)
    (State.count_subset_peers s sset + State.count_helpful_peers s sset)

let test_sample_uniform_distribution () =
  let rng = P2p_prng.Rng.of_seed 6 in
  let s = State.of_counts [ (PS.empty, 3); (PS.singleton 0, 1) ] in
  let hits = ref 0 in
  let n = 40_000 in
  for _ = 1 to n do
    if PS.is_empty (State.sample_uniform_peer s ~draw:(P2p_prng.Rng.int_below rng)) then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "3/4 of draws" true (Float.abs (freq -. 0.75) < 0.01)

let test_sample_empty_raises () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (State.sample_uniform_peer (State.create ()) ~draw:(fun _ -> 0));
       false
     with Invalid_argument _ -> true)

let test_equal () =
  let a = State.of_counts [ (PS.empty, 2); (PS.singleton 0, 1) ] in
  let b = State.of_counts [ (PS.singleton 0, 1); (PS.empty, 2) ] in
  Alcotest.(check bool) "equal" true (State.equal a b);
  State.add_peer b PS.empty;
  Alcotest.(check bool) "not equal" false (State.equal a b)

(* Regression for the incrementally maintained copy counts: after a long
   random add/remove/move trace, the O(1) counters must agree exactly
   with a from-scratch rescan of the occupied types.  An off-by-one in
   the move-delta accounting (e.g. double-crediting pieces shared by the
   source and target types) survives short unit tests but not this. *)
let test_incremental_counts_match_rescan () =
  let rng = P2p_prng.Rng.of_seed 4242 in
  let k = 5 in
  let s = State.create () in
  let recount () =
    let fresh = Array.make k 0 in
    State.iter s (fun c v ->
        PS.iter (fun i -> if i < k then fresh.(i) <- fresh.(i) + v) c);
    fresh
  in
  let random_type () = PS.of_index (P2p_prng.Rng.int_below rng (1 lsl k)) in
  let random_occupied () =
    (* A uniformly chosen peer's type — only valid when n > 0. *)
    State.sample_uniform_peer s ~draw:(P2p_prng.Rng.int_below rng)
  in
  for step = 1 to 5_000 do
    (match P2p_prng.Rng.int_below rng 3 with
    | 0 -> State.add_peer s (random_type ())
    | 1 -> if State.n s > 0 then State.remove_peer s (random_occupied ())
    | _ ->
        if State.n s > 0 then
          State.move_peer s ~from_:(random_occupied ()) ~to_:(random_type ()))
    ;
    if step mod 500 = 0 then
      Alcotest.(check (array int))
        (Printf.sprintf "counts at step %d" step)
        (recount ())
        (State.piece_count_vector s ~k)
  done;
  Alcotest.(check (array int)) "final counts" (recount ()) (State.piece_count_vector s ~k);
  Array.iteri
    (fun i expected ->
      Alcotest.(check int)
        (Printf.sprintf "piece_copies %d" i)
        expected
        (State.piece_copies s ~k ~piece:i))
    (recount ())

let () =
  Alcotest.run "state"
    [
      ( "state",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "move" `Quick test_move;
          Alcotest.test_case "of_counts" `Quick test_of_counts;
          Alcotest.test_case "copy" `Quick test_copy_isolated;
          Alcotest.test_case "alist sorted" `Quick test_alist_sorted;
          Alcotest.test_case "piece counts" `Quick test_piece_counts;
          Alcotest.test_case "incremental counts vs rescan" `Quick
            test_incremental_counts_match_rescan;
          Alcotest.test_case "subset/helpful counts" `Quick test_subset_helpful_counts;
          Alcotest.test_case "sample distribution" `Quick test_sample_uniform_distribution;
          Alcotest.test_case "sample empty" `Quick test_sample_empty_raises;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
    ]
