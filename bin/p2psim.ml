(* p2psim: command-line front end to the stability library.

   Subcommands:
     classify  - Theorem 1 verdict for a parameter set
     simulate  - run the exact Markov (or agent-level) simulator
     fluid     - integrate the mean-field limit (--hybrid for CTMC handoff)
     region    - sweep lambda x us and print the phase diagram
     overlay   - simulate on a sparse random overlay topology
     hetero    - heterogeneous peer classes (heuristic region + simulation)
     coded     - Theorem 15 thresholds and coded-swarm simulation
     drift     - Lyapunov drift scan (the Foster-Lyapunov certificate)
     exact     - exact stationary distribution on a truncated state space
     reachable - minimal closed set of states under a selection policy
     borderline- the mu = infinity watched process of Section VIII-D
     campaign  - checkpointed sweeps over a crash-safe result store *)

open Cmdliner
module Pieceset = P2p_pieceset.Pieceset
module Runner = P2p_runner.Runner
module Welford = P2p_stats.Welford
module Probe = P2p_obs.Probe
module Trace = P2p_obs.Trace
module Series = P2p_obs.Series
module Profile = P2p_obs.Profile
module Hist = P2p_obs.Hist
module Recorder = P2p_obs.Recorder
module Monitor = P2p_obs.Monitor
module Progress = P2p_obs.Progress
module Json = P2p_obs.Json
module Campaign = P2p_campaign.Campaign
module Campaign_spec = P2p_campaign.Spec
module Store = P2p_campaign.Store
open P2p_core

(* ---- shared argument parsing ---- *)

(* Arrival streams parse straight to (Pieceset.t, rate) through a Cmdliner
   conv, so a typo produces a usage error naming the offending token plus
   the expected shape — not an uncaught Failure with a backtrace. *)
let arrival_conv =
  let hint = "expected PIECES=RATE, e.g. 'none=1.0' or '1,3=0.25'" in
  let parse spec =
    let fail fmt = Printf.ksprintf (fun m -> Error (`Msg (m ^ "; " ^ hint))) fmt in
    match String.split_on_char '=' spec with
    | [ pieces; rate ] -> begin
        match float_of_string_opt rate with
        | None -> fail "bad rate %S in arrival spec %S" rate spec
        | Some rate ->
            let rec pieces_of acc = function
              | [] -> Ok (Pieceset.of_list acc, rate)
              | s :: rest -> (
                  match int_of_string_opt (String.trim s) with
                  | Some i when i >= 1 -> pieces_of ((i - 1) :: acc) rest
                  | Some _ | None -> fail "bad piece %S in arrival spec %S" s spec)
            in
            if pieces = "none" || pieces = "" then Ok (Pieceset.empty, rate)
            else pieces_of [] (String.split_on_char ',' pieces)
      end
    | _ -> fail "arrival spec %S is not of the form PIECES=RATE" spec
  in
  let pp fmt (set, rate) =
    Format.fprintf fmt "%s=%g" (if Pieceset.is_empty set then "none" else Pieceset.to_string set) rate
  in
  Arg.conv (parse, pp)

let arrivals_arg =
  let doc =
    "Arrival stream $(docv) as PIECES=RATE, repeatable; PIECES is a comma-separated list of \
     1-based piece numbers, or 'none' for empty-handed peers. Example: --arrive none=1.0 \
     --arrive 1,2=0.3"
  in
  Arg.(value & opt_all arrival_conv [ (Pieceset.empty, 1.0) ]
       & info [ "arrive"; "a" ] ~docv:"SPEC" ~doc)

let k_arg = Arg.(value & opt int 4 & info [ "k"; "num-pieces" ] ~docv:"K" ~doc:"Number of pieces.")
let us_arg = Arg.(value & opt float 1.0 & info [ "us" ] ~docv:"RATE" ~doc:"Fixed seed contact rate U_s.")
let mu_arg = Arg.(value & opt float 1.0 & info [ "mu" ] ~docv:"RATE" ~doc:"Peer contact rate mu.")

let gamma_arg =
  let doc = "Peer-seed departure rate gamma; 'inf' means peers leave on completion." in
  let parse s =
    if s = "inf" || s = "infinity" then Ok infinity
    else match float_of_string_opt s with Some g -> Ok g | None -> Error (`Msg "bad gamma")
  in
  let gamma_conv = Arg.conv (parse, fun fmt g -> Format.fprintf fmt "%g" g) in
  Arg.(value & opt gamma_conv infinity & info [ "gamma" ] ~docv:"RATE" ~doc)

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"INT" ~doc:"PRNG seed.")

let jobs_arg =
  let doc =
    "Domains for replication sweeps; 0 = one per recommended core. Results are identical for \
     every value of $(docv) (deterministic seeding + ordered merge)."
  in
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"D" ~doc)

let resolve_jobs jobs = if jobs <= 0 then Runner.default_jobs () else jobs

let shards_arg =
  let doc =
    "Partition the swarm itself into $(docv) shards (by arrival-class hash) and run their \
     event loops concurrently, resolving cross-shard contacts through barrier messages \
     (DESIGN §17). 1 = the classic single-loop simulator, bit-identical to previous \
     releases. For a fixed shard count the run is deterministic — repeated invocations and \
     every --jobs value produce identical output — but trajectories differ between shard \
     counts. Requires --reps 1."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"S" ~doc)

let sync_every_arg =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0.0 -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "sync window must be a finite positive time, got %S" s))
  in
  let c = Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%g" v) in
  Arg.(value & opt (some c) None
       & info [ "sync-every" ] ~docv:"T"
           ~doc:"Simulation-time width of the shard synchronisation window (default \
                 horizon/200). Smaller windows tighten cross-shard rate coupling at the cost \
                 of more barriers; the value is part of the deterministic-run key, so hold it \
                 fixed when comparing runs.")

let reps_arg ~default =
  Arg.(value & opt int default & info [ "reps"; "r" ] ~docv:"R"
       ~doc:"Independent replications (replication i uses the RNG stream (seed, i)).")

let horizon_arg =
  Arg.(value & opt float 1000.0 & info [ "horizon"; "t" ] ~docv:"TIME" ~doc:"Simulation horizon.")

let make_params k us mu gamma arrivals = Params.make ~k ~us ~mu ~gamma ~arrivals

let params_term = Term.(const make_params $ k_arg $ us_arg $ mu_arg $ gamma_arg $ arrivals_arg)

(* ---- fault injection flags (shared by simulate) ---- *)

let outage_arg =
  let doc =
    "Take the fixed seed through alternating Exp(UP)/Exp(DOWN) up and down periods (mean \
     durations). While down the seed uploads nothing; Theorem 1 at the effective rate U_s \
     x UP/(UP+DOWN) predicts where the missing piece syndrome sets in."
  in
  let parse s =
    let bad () =
      Error
        (`Msg
           (Printf.sprintf "seed outage %S is not UP,DOWN (two positive mean durations, e.g. '50,10')" s))
    in
    match String.split_on_char ',' s with
    | [ up; down ] -> (
        match (float_of_string_opt up, float_of_string_opt down) with
        | Some u, Some d when u > 0.0 && d > 0.0 && Float.is_finite u && Float.is_finite d ->
            Ok (u, d)
        | _ -> bad ())
    | _ -> bad ()
  in
  let outage_c = Arg.conv (parse, fun fmt (u, d) -> Format.fprintf fmt "%g,%g" u d) in
  Arg.(value & opt (some outage_c) None & info [ "seed-outage" ] ~docv:"UP,DOWN" ~doc)

let nonneg_rate_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v >= 0.0 -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%s must be a finite non-negative number, got %S" what s))
  in
  Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%g" v)

let abort_rate_arg =
  Arg.(value & opt (nonneg_rate_conv "abort rate") 0.0
       & info [ "abort-rate" ] ~docv:"RATE"
           ~doc:"Churn: each unfinished peer aborts (leaves without the file) at rate $(docv).")

let loss_prob_arg =
  let parse s =
    match float_of_string_opt s with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok p
    | Some _ | None -> Error (`Msg (Printf.sprintf "loss probability must be in [0, 1], got %S" s))
  in
  let prob_c = Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%g" v) in
  Arg.(value & opt prob_c 0.0
       & info [ "loss-prob" ] ~docv:"P"
           ~doc:"Each would-be upload is lost (no piece transferred) with probability $(docv).")

let faults_term =
  let make outage abort_rate loss_prob = Faults.make ?outage ~abort_rate ~loss_prob () in
  Term.(const make $ outage_arg $ abort_rate_arg $ loss_prob_arg)

let on_error_arg =
  let doc =
    "What to do when a replication raises: 'abort' (default; re-raise with backtrace), 'skip' \
     (drop it, keep the sweep), or 'retry:N' (up to N fresh deterministic streams, then skip)."
  in
  let parse s =
    match String.lowercase_ascii s with
    | "abort" -> Ok Runner.Abort
    | "skip" -> Ok Runner.Skip
    | s when String.length s > 6 && String.sub s 0 6 = "retry:" -> (
        match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
        | Some n when n >= 1 -> Ok (Runner.Retry n)
        | Some _ | None ->
            Error (`Msg (Printf.sprintf "retry count in %S must be a positive integer" s)))
    | _ -> Error (`Msg (Printf.sprintf "unknown policy %S (expected abort, skip, or retry:N)" s))
  in
  let pp fmt = function
    | Runner.Abort -> Format.pp_print_string fmt "abort"
    | Runner.Skip -> Format.pp_print_string fmt "skip"
    | Runner.Retry n -> Format.fprintf fmt "retry:%d" n
  in
  Arg.(value & opt (conv (parse, pp)) Runner.Abort & info [ "on-error" ] ~docv:"POLICY" ~doc)

let max_events_arg =
  Arg.(value & opt (some int) None
       & info [ "max-events" ] ~docv:"N"
           ~doc:"Per-replication event budget; a run that exhausts it is frozen at its current \
                 state and counted as partial.")

let timeout_conv what =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0.0 -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "%s must be a finite positive number of seconds, got %S" what s))
  in
  Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%g" v)

let rep_timeout_arg =
  Arg.(value & opt (some (timeout_conv "replication timeout")) None
       & info [ "rep-timeout" ] ~docv:"SECS"
           ~doc:"Per-replication wall-clock watchdog: an attempt running longer than $(docv) \
                 seconds is recorded as a failure and handled by --on-error (a retried attempt \
                 gets a fresh deterministic stream and a fresh watchdog). Wall-clock limits are \
                 scheduling-dependent; pick a wide margin if results must be reproducible.")

(* ---- telemetry flags (simulate / region) ---- *)

type telemetry = {
  trace : string option;
  probe_interval : float option;
  metrics_out : string option;
  progress : bool;
  profile : bool;
  flight_recorder : string option;
  monitor : bool;
  alerts_out : string option;
  hist_out : string option;
}

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a structured event trace of the run to $(docv): Chrome trace-event JSON \
                 when the name ends in .json (open in chrome://tracing or Perfetto), JSONL \
                 otherwise. Timestamps are simulation time. Requires --reps 1.")

let probe_interval_arg =
  let parse s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v && v > 0.0 -> Ok v
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "probe interval must be a finite positive number, got %S" s))
  in
  let c = Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%g" v) in
  Arg.(value & opt (some c) None
       & info [ "probe-interval" ] ~docv:"T"
           ~doc:"Sample the swarm (population, peer seeds, one-club size, per-piece copies) \
                 every $(docv) units of simulation time and print the time-averaged summary. \
                 Simulation time, never wall clock: the series is reproducible bit for bit.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the probe sample series as JSONL to $(docv) (render it later with \
                 'p2psim report'). Implies probing (default interval horizon/200 unless \
                 --probe-interval is given). Requires --reps 1.")

let progress_arg =
  Arg.(value & flag
       & info [ "progress" ]
           ~doc:"Live progress meter on stderr for replication sweeps: replications done, \
                 aggregate events/s, ETA.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Wall-clock phase profile of the simulator (setup / event loop / finalisation), \
                 printed after the run.")

let flight_recorder_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-recorder" ] ~docv:"FILE"
           ~doc:"Keep the last few thousand engine events in a preallocated ring buffer and dump \
                 them to $(docv) when the run ends, crashes, or is signalled (SIGINT/SIGTERM); \
                 the ring is also republished atomically every few thousand events, so even a \
                 SIGKILL leaves the last complete snapshot behind. Chrome trace JSON when the \
                 name ends in .json, JSONL otherwise. Requires --reps 1.")

let monitor_arg =
  Arg.(value & flag
       & info [ "monitor" ]
           ~doc:"Watch the probe samples for the missing piece syndrome as the run executes: a \
                 structured alert fires on stderr when the rarest-piece replica count pins near \
                 one while the one-club drifts linearly upward (the Theorem 1 instability \
                 signature). Implies probing (default interval horizon/200). Detection runs on \
                 simulation time only, so monitored runs are bit-identical to bare runs. \
                 Requires --reps 1.")

let alerts_out_arg =
  Arg.(value & opt (some string) None
       & info [ "alerts-out" ] ~docv:"FILE"
           ~doc:"Write the monitor's detector timeline (alerts and syndrome episodes) as JSON \
                 to $(docv). Implies --monitor.")

let hist_out_arg =
  Arg.(value & opt (some string) None
       & info [ "hist-out" ] ~docv:"FILE"
           ~doc:"Record per-event-type counts and sampled per-phase wall-clock cost into \
                 log2-bucket histograms and write them to $(docv) (render with 'p2psim \
                 report'). Requires --reps 1.")

let telemetry_term =
  let make trace probe_interval metrics_out progress profile flight_recorder monitor alerts_out
      hist_out =
    { trace; probe_interval; metrics_out; progress; profile; flight_recorder; monitor;
      alerts_out; hist_out }
  in
  Term.(const make $ trace_arg $ probe_interval_arg $ metrics_out_arg $ progress_arg
        $ profile_arg $ flight_recorder_arg $ monitor_arg $ alerts_out_arg $ hist_out_arg)

let usage_error fmt = Printf.ksprintf (fun m -> prerr_endline ("p2psim: " ^ m); exit 2) fmt

(* Build the probe for a single run, hand it to [f], then flush the
   attached sinks (metrics file, trace file, flight dump, histogram
   file, monitor timeline, profile report).  The flight recorder is the
   crash-path sink: it dumps from the SIGINT/SIGTERM handlers and from
   the exception path, not just on clean exit, and keeps a rate-limited
   auto-snapshot on disk so even SIGKILL leaves the last complete ring
   behind. *)
let with_single_run_probe tel ~k ~horizon f =
  let tracer = Option.map Trace.to_file tel.trace in
  let monitoring = tel.monitor || tel.alerts_out <> None in
  let series =
    if tel.probe_interval <> None || tel.metrics_out <> None then Some (Series.create ~k)
    else None
  in
  let monitor =
    if monitoring then
      Some
        (Monitor.create
           ~on_alert:(fun a -> Format.eprintf "p2psim: %a@." Monitor.pp_alert a)
           ())
    else None
  in
  let recorder =
    match tel.flight_recorder with
    | None -> Recorder.disabled
    | Some file ->
        let r = Recorder.create () in
        Recorder.auto_snapshot r ~every:(Recorder.capacity r) ~min_gap_s:1.0
          ~code_name:Probe.code_name file;
        r
  in
  let hists = match tel.hist_out with None -> Hist.disabled_group | Some _ -> Hist.group () in
  let prof = if tel.profile then Profile.create () else Profile.disabled in
  let bare =
    tracer = None && series = None && monitor = None && not tel.profile
    && not (Recorder.live recorder)
    && not (Hist.enabled hists)
  in
  let probe =
    if bare then Probe.none
    else
      let on_sample =
        if series = None && monitor = None then None
        else
          Some
            (fun (s : Probe.sample) ->
              Option.iter (fun sr -> Series.record sr s) series;
              Option.iter
                (fun m ->
                  Monitor.observe m ~time:s.Probe.time ~one_club:s.Probe.one_club
                    ~rarest_piece:s.Probe.rarest_piece ~rarest_count:s.Probe.rarest_count)
                monitor)
      in
      Probe.make
        ?interval:
          (match tel.probe_interval with
          | Some dt -> Some dt
          | None ->
              if series <> None || monitor <> None then Some (horizon /. 200.0) else None)
        ?on_event:(Option.map Probe.trace_hook tracer)
        ?on_sample ~profile:prof ~recorder ~hists ()
  in
  let dump_recorder ~out =
    match tel.flight_recorder with
    | Some file when Recorder.live recorder ->
        Recorder.dump recorder ~code_name:Probe.code_name file;
        Printf.fprintf out "flight recorder: %d events kept (%d overwritten) -> %s\n%!"
          (min (Recorder.recorded recorder) (Recorder.capacity recorder))
          (Recorder.dropped recorder) file
    | _ -> ()
  in
  let result =
    match tel.flight_recorder with
    | None -> f probe
    | Some _ ->
        (* Dump the ring on the way out of every abnormal exit the
           process can still observe; SIGKILL is covered by the
           auto-snapshot above. *)
        let on_signal code _ =
          dump_recorder ~out:stderr;
          exit code
        in
        let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle (on_signal 130)) in
        let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle (on_signal 143)) in
        let restore () =
          Sys.set_signal Sys.sigint prev_int;
          Sys.set_signal Sys.sigterm prev_term
        in
        (try f probe
         with e ->
           dump_recorder ~out:stderr;
           restore ();
           raise e)
        |> fun r ->
        restore ();
        r
  in
  dump_recorder ~out:stdout;
  Option.iter
    (fun m ->
      let n_alerts = List.length (Monitor.alerts m) in
      Report.kv
        [
          ("monitor samples", string_of_int (Monitor.samples_seen m));
          ("missing-piece alerts", string_of_int n_alerts);
          ("syndrome episodes", string_of_int (List.length (Monitor.episodes m)));
          ( "currently alerting",
            if Monitor.alerting m then "yes (syndrome open at horizon)" else "no" );
        ];
      match tel.alerts_out with
      | None -> ()
      | Some file ->
          Json.write_file_atomic file (fun oc ->
              Json.to_channel oc (Monitor.to_json m);
              output_char oc '\n');
          Printf.printf "wrote detector timeline (%d alerts) to %s\n" n_alerts file)
    monitor;
  (match tel.hist_out with
  | None -> ()
  | Some file ->
      Hist.write_group_file hists file;
      Printf.printf "wrote %d histograms to %s\n" (List.length (Hist.hists hists)) file);
  Option.iter
    (fun s ->
      Series.close s ~time:horizon;
      Report.kv
        [
          ("probe samples", string_of_int (Series.count s));
          ("time-avg one-club size", Report.fmt_float (Series.avg_one_club s));
          ("time-avg rarest-piece copies", Report.fmt_float (Series.avg_rarest_count s));
          ("time-avg peer seeds", Report.fmt_float (Series.avg_seeds s));
        ];
      match tel.metrics_out with
      | None -> ()
      | Some file ->
          Json.write_file_atomic file (fun oc -> Series.write s oc);
          Printf.printf "wrote %d probe samples to %s\n" (Series.count s) file)
    series;
  Option.iter
    (fun t ->
      let n = Trace.events_written t in
      Trace.close t;
      Printf.printf "wrote %d trace events to %s\n" n (Option.get tel.trace))
    tracer;
  if tel.profile then Format.printf "%a@." Profile.pp prof;
  result

(* Degraded-seed commentary shared by the simulate paths: what Theorem 1
   predicts once U_s is scaled by the outage duty cycle. *)
let report_effective_verdict (params : Params.t) faults =
  match (faults : Faults.t).outage with
  | None -> ()
  | Some _ ->
      let uf = Faults.uptime_fraction faults in
      Printf.printf "seed uptime fraction %.4f: effective U_s = %s; Theorem 1 there: %s\n"
        uf
        (Report.fmt_float (Faults.effective_us faults ~us:params.us))
        (Stability.verdict_to_string (Stability.classify_effective params ~uptime_fraction:uf))

let report_failures (timing : Runner.timing) =
  if timing.failures <> [] then begin
    Printf.printf "failed replications (excluded from aggregates):\n";
    List.iter (fun f -> Format.printf "  @[<v>%a@]@." Runner.pp_failure f) timing.failures
  end;
  if timing.interrupted then
    print_endline "interrupted by SIGINT: aggregates cover completed chunks only"

(* Shared replication driver for the simulate/coded/overlay paths:
   R independent replications, merged Welford per metric, printed as a
   mean ± CI table.  Aggregates are bit-identical for every --jobs value
   (and under skip/retry: surviving replications keep their streams).
   [after_table] slots model-specific commentary between the table and
   the partial/failure report. *)
let replication_table ~reps ~seed ~jobs ~on_error ?rep_timeout_s ~progress ~metrics
    ?(after_table = fun () -> ()) thunk =
  let summary =
    Runner.run_summary ~jobs:(resolve_jobs jobs) ~on_error ?rep_timeout_s ~handle_sigint:true
      ~progress
      ~hist:{ Runner.lo = 0.0; hi = 400.0; bins = 20 }
      ~metrics ~master_seed:seed ~replications:reps thunk
  in
  Printf.printf "%d replications (master seed %d)\n" reps seed;
  Report.table
    ~header:[ "metric"; "mean"; "std err"; "95% CI"; "min"; "max" ]
    (List.map
       (fun (name, w) ->
         let lo, hi = Welford.confidence_interval w ~z:1.96 in
         [
           name;
           Report.fmt_float (Welford.mean w);
           Report.fmt_float (Welford.std_error w);
           Printf.sprintf "[%s, %s]" (Report.fmt_float lo) (Report.fmt_float hi);
           Report.fmt_float (Welford.min_value w);
           Report.fmt_float (Welford.max_value w);
         ])
       summary.stats);
  after_table ();
  if summary.partial > 0 then
    Printf.printf "%d replication%s partial (event budget or wall budget exhausted)\n"
      summary.partial
      (if summary.partial = 1 then "" else "s");
  report_failures summary.timing;
  Format.printf "%a@." Runner.pp_timing summary.timing

(* Extra metric columns that only appear when faults are injected. *)
let fault_metric_names faults =
  if Faults.is_none faults then []
  else [ "outage time"; "aborted peers"; "lost transfers" ]

let fault_rows faults (outage_time, aborted, lost) =
  if Faults.is_none faults then []
  else
    [
      ("seed outage time", Report.fmt_float outage_time);
      ("aborted peers", string_of_int aborted);
      ("lost transfers", string_of_int lost);
    ]

let truncation_warning truncated =
  if truncated then
    print_endline "WARNING: max_events budget exhausted before the horizon; \
                   time-based statistics are biased"

(* Trajectory CSVs go through write-tmp-then-rename like every other
   emitter: a crash mid-write leaves the previous file (or nothing),
   never a torn one. *)
let write_samples_csv file samples =
  Json.write_file_atomic file (fun oc ->
      output_string oc "time,population\n";
      Array.iter (fun (t, n) -> Printf.fprintf oc "%g,%d\n" t n) samples);
  Printf.printf "wrote %s\n" file

(* Telemetry a sharded run can carry: per-shard instruments that merge
   (or file-split) at the join.  Everything that assumes one global event
   stream — traces, probe series, the syndrome monitor, the phase
   profile — is rejected rather than silently recording one shard. *)
let reject_sharded_telemetry tel =
  if tel.trace <> None then
    usage_error "--trace requires --shards 1 (per-shard traces would interleave)";
  if tel.metrics_out <> None || tel.probe_interval <> None then
    usage_error "--metrics-out/--probe-interval require --shards 1 (one probe series per run)";
  if tel.monitor || tel.alerts_out <> None then
    usage_error "--monitor requires --shards 1 (the detector watches one global series)";
  if tel.profile then usage_error "--profile requires --shards 1"

(* FILE.shardI with the extension preserved (flight.json ->
   flight.shard0.json), so format sniffing on the suffix still works. *)
let shard_file file i =
  match String.rindex_opt file '.' with
  | Some dot when dot > 0 && not (String.contains (String.sub file dot (String.length file - dot)) '/')
    ->
      Printf.sprintf "%s.shard%d%s" (String.sub file 0 dot) i
        (String.sub file dot (String.length file - dot))
  | _ -> Printf.sprintf "%s.shard%d" file i

let reject_single_run_telemetry tel =
  if tel.trace <> None then
    usage_error "--trace requires --reps 1 (per-replication traces would interleave)";
  if tel.metrics_out <> None then
    usage_error "--metrics-out requires --reps 1 (one probe series per run)";
  if tel.flight_recorder <> None then
    usage_error "--flight-recorder requires --reps 1 (one ring per run; campaigns have their own)";
  if tel.monitor || tel.alerts_out <> None then
    usage_error "--monitor requires --reps 1 (one detector per run)";
  if tel.hist_out <> None then
    usage_error "--hist-out requires --reps 1 (per-replication histograms would interleave)"

(* ---- classify ---- *)

let classify_cmd =
  let run params =
    Format.printf "%a@." Params.pp params;
    let verdict, piece, margin = Stability.classify_detail params in
    Report.kv
      [
        ("verdict (Theorem 1)", Stability.verdict_to_string verdict);
        ("binding piece", string_of_int (piece + 1));
        ("threshold", Report.fmt_float (Stability.threshold params ~piece));
        ("lambda_total", Report.fmt_float (Params.lambda_total params));
        ("margin", Report.fmt_float margin);
        ("max stable lambda (same mix)", Report.fmt_float (Stability.stable_lambda_limit params));
      ];
    Report.subsection "Delta_S for every proper subset S (Eq. 4; all < 0 iff stable)";
    List.iter
      (fun s ->
        Printf.printf "  Delta_%-12s = %s\n" (Pieceset.to_string s)
          (Report.fmt_float (Stability.delta params ~s)))
      (Pieceset.all_proper ~k:params.k)
  in
  Cmd.v (Cmd.info "classify" ~doc:"Theorem 1 verdict for a parameter set")
    Term.(const run $ params_term)

(* ---- simulate ---- *)

let simulate_cmd =
  let agent_arg =
    Arg.(value & flag & info [ "agent" ] ~doc:"Use the agent-level simulator (tracks groups).")
  in
  let policy_arg =
    let policy_conv =
      Arg.enum
        [
          ("random", Policy.random_useful);
          ("rarest", Policy.rarest_first);
          ("common", Policy.most_common_first);
          ("sequential", Policy.sequential);
        ]
    in
    Arg.(value & opt policy_conv Policy.random_useful & info [ "policy" ] ~docv:"NAME"
         ~doc:"Piece selection: random|rarest|common|sequential.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
         ~doc:"Write the sampled (t, N_t) trajectory as CSV.")
  in
  let replicated params horizon seed agent policy reps jobs faults on_error rep_timeout
      max_events ~progress:want_progress =
    let progress = if want_progress then Progress.create ~total:reps () else Progress.silent in
    let with_faults = not (Faults.is_none faults) in
    let metrics =
      [ "time-avg N"; "final N"; "transfers"; "departures"; "growth dN/dt" ]
      @ fault_metric_names faults
    in
    let thunk ~rng ~index:_ =
      let time_avg_n, final_n, transfers, departures, samples, truncated, fault_counts =
        if agent then begin
          let config = { (Sim_agent.default_config params) with policy; faults } in
          let s, _ = Sim_agent.run ?max_events ~rng config ~horizon in
          Progress.add_events progress s.events;
          ( s.time_avg_n, s.final_n, s.transfers, s.departures, s.samples, s.truncated,
            [| s.outage_time; float_of_int s.aborted_peers; float_of_int s.lost_transfers |] )
        end
        else begin
          let config = { (Sim_markov.default_config params) with policy; faults } in
          let s, _ =
            Sim_markov.run ?max_events ~rng
              ~until:(fun ~time:_ ~n:_ -> Runner.deadline_exceeded ())
              config ~horizon
          in
          if s.stopped then raise Runner.Rep_timeout;
          Progress.add_events progress s.events;
          ( s.time_avg_n, s.final_n, s.transfers, s.departures, s.samples, s.truncated,
            [| s.outage_time; float_of_int s.aborted_peers; float_of_int s.lost_transfers |] )
        end
      in
      let growth = (Classify.of_samples samples).growth_rate in
      let values =
        Array.append
          [| time_avg_n; float_of_int final_n; float_of_int transfers;
             float_of_int departures; growth |]
          (if with_faults then fault_counts else [||])
      in
      Runner.rep ~flagged:truncated ~obs:[| time_avg_n |] values
    in
    replication_table ~reps ~seed ~jobs ~on_error ?rep_timeout_s:rep_timeout ~progress ~metrics
      ~after_table:(fun () -> report_effective_verdict params faults)
      thunk
  in
  (* One giant sharded run: per-shard instruments, merged stats, and a
     sharding section proving the partition ran (per-shard event
     counts).  The merged report mirrors the single-run path so sharded
     and classic output stay diffable. *)
  let sharded params horizon seed agent policy csv shards sync_every jobs faults max_events tel =
    reject_sharded_telemetry tel;
    let hist_groups =
      Array.init shards (fun _ ->
          if tel.hist_out <> None then Hist.group () else Hist.disabled_group)
    in
    let recorders =
      Array.init shards (fun _ ->
          match tel.flight_recorder with None -> Recorder.disabled | Some _ -> Recorder.create ())
    in
    let probes i =
      if tel.hist_out = None && tel.flight_recorder = None then Probe.none
      else Probe.make ~recorder:recorders.(i) ~hists:hist_groups.(i) ()
    in
    let jobs = Int.min shards (resolve_jobs jobs) in
    let stats_rows, samples, truncated, growth, report =
      if agent then begin
        let config = { (Sim_agent.default_config params) with policy; faults } in
        let s, _, (r : Sim_agent.shard_report) =
          Sim_agent.run_sharded_seeded ~probes ?sync_every ?max_events ~jobs ~shards ~seed
            config ~horizon
        in
        ( [
            ("events", string_of_int s.Sim_agent.events);
            ("arrivals", string_of_int s.Sim_agent.arrivals);
            ("transfers", string_of_int s.Sim_agent.transfers);
            ("departures", string_of_int s.Sim_agent.departures);
            ("time-avg N", Report.fmt_float s.Sim_agent.time_avg_n);
            ("max N", string_of_int s.Sim_agent.max_n);
            ("final N", string_of_int s.Sim_agent.final_n);
            ("mean sojourn", Report.fmt_float s.Sim_agent.mean_sojourn);
            ("one-club fraction", Report.fmt_float s.Sim_agent.one_club_time_fraction);
          ]
          @ fault_rows faults
              (s.Sim_agent.outage_time, s.Sim_agent.aborted_peers, s.Sim_agent.lost_transfers),
          s.Sim_agent.samples,
          s.Sim_agent.truncated,
          (Classify.of_samples s.Sim_agent.samples).growth_rate,
          ( r.Sim_agent.windows,
            r.Sim_agent.cross_messages,
            r.Sim_agent.shard_events,
            r.Sim_agent.shard_final_n ) )
      end
      else begin
        let config = { (Sim_markov.default_config params) with policy; faults } in
        let s, _, (r : Sim_markov.shard_report) =
          Sim_markov.run_sharded_seeded ~probes ?sync_every ?max_events ~jobs ~shards ~seed
            config ~horizon
        in
        ( [
            ("events", string_of_int s.Sim_markov.events);
            ("arrivals", string_of_int s.Sim_markov.arrivals);
            ("transfers", string_of_int s.Sim_markov.transfers);
            ("departures", string_of_int s.Sim_markov.departures);
            ("time-avg N", Report.fmt_float s.Sim_markov.time_avg_n);
            ("max N", string_of_int s.Sim_markov.max_n);
            ("final N", string_of_int s.Sim_markov.final_n);
            ("visits to empty (barrier-sampled)", string_of_int s.Sim_markov.visits_to_empty);
          ]
          @ fault_rows faults
              (s.Sim_markov.outage_time, s.Sim_markov.aborted_peers, s.Sim_markov.lost_transfers),
          s.Sim_markov.samples,
          s.Sim_markov.truncated,
          (Classify.of_samples s.Sim_markov.samples).growth_rate,
          ( r.Sim_markov.windows,
            r.Sim_markov.cross_messages,
            r.Sim_markov.shard_events,
            r.Sim_markov.shard_final_n ) )
      end
    in
    truncation_warning truncated;
    Report.kv stats_rows;
    let windows, messages, shard_events, shard_final_n = report in
    Report.subsection
      (Printf.sprintf "sharding (%d shards, %d domain%s)" shards jobs
         (if jobs = 1 then "" else "s"));
    Report.kv
      [
        ("sync windows", string_of_int windows);
        ("cross-shard messages", string_of_int messages);
        ( "per-shard events",
          String.concat " "
            (Array.to_list (Array.map string_of_int shard_events)) );
        ( "per-shard final N",
          String.concat " "
            (Array.to_list (Array.map string_of_int shard_final_n)) );
      ];
    (match tel.hist_out with
    | None -> ()
    | Some file ->
        let merged = Hist.group () in
        Array.iter (fun g -> Hist.merge_group_into ~into:merged g) hist_groups;
        Hist.write_group_file merged file;
        Printf.printf "wrote %d histograms (merged over %d shards) to %s\n"
          (List.length (Hist.hists merged)) shards file);
    (match tel.flight_recorder with
    | None -> ()
    | Some file ->
        Array.iteri
          (fun i r ->
            let f = shard_file file i in
            Recorder.dump r ~code_name:Probe.code_name f;
            Printf.printf "flight recorder shard %d: %d events kept (%d overwritten) -> %s\n" i
              (min (Recorder.recorded r) (Recorder.capacity r))
              (Recorder.dropped r) f)
          recorders);
    Printf.printf "empirical verdict: %s (growth %s/t)\n"
      (Classify.verdict_to_string (Classify.of_samples samples).verdict)
      (Report.fmt_float growth);
    report_effective_verdict params faults;
    match csv with None -> () | Some file -> write_samples_csv file samples
  in
  let run params horizon seed agent policy csv reps jobs shards sync_every faults on_error
      rep_timeout max_events tel =
    let write_csv samples =
      match csv with
      | None -> ()
      | Some file -> write_samples_csv file samples
    in
    let fault_rows = fault_rows faults in
    if shards < 1 then usage_error "--shards must be >= 1";
    if shards > 1 && reps > 1 then
      usage_error "--shards requires --reps 1 (shard one giant run, or replicate unsharded)";
    if shards > 1 then
      sharded params horizon seed agent policy csv shards sync_every jobs faults max_events tel
    else if reps > 1 then begin
      reject_single_run_telemetry tel;
      replicated params horizon seed agent policy reps jobs faults on_error rep_timeout
        max_events ~progress:tel.progress
    end
    else if agent then begin
      let config = { (Sim_agent.default_config params) with policy; faults } in
      let stats, _ =
        with_single_run_probe tel ~k:params.k ~horizon (fun probe ->
            Sim_agent.run_seeded ~probe ?max_events ~seed config ~horizon)
      in
      truncation_warning stats.truncated;
      Report.kv
        ([
           ("events", string_of_int stats.events);
           ("arrivals", string_of_int stats.arrivals);
           ("transfers", string_of_int stats.transfers);
           ("departures", string_of_int stats.departures);
           ("time-avg N", Report.fmt_float stats.time_avg_n);
           ("max N", string_of_int stats.max_n);
           ("final N", string_of_int stats.final_n);
           ("mean sojourn", Report.fmt_float stats.mean_sojourn);
           ("one-club fraction", Report.fmt_float stats.one_club_time_fraction);
         ]
        @ fault_rows (stats.outage_time, stats.aborted_peers, stats.lost_transfers));
      let r = Classify.of_samples stats.samples in
      Printf.printf "empirical verdict: %s (growth %s/t)\n"
        (Classify.verdict_to_string r.verdict)
        (Report.fmt_float r.growth_rate);
      report_effective_verdict params faults;
      write_csv stats.samples
    end
    else begin
      let config = { (Sim_markov.default_config params) with policy; faults } in
      let stats, _ =
        with_single_run_probe tel ~k:params.k ~horizon (fun probe ->
            Sim_markov.run_seeded ~probe ?max_events ~seed config ~horizon)
      in
      truncation_warning stats.truncated;
      Report.kv
        ([
           ("events", string_of_int stats.events);
           ("arrivals", string_of_int stats.arrivals);
           ("transfers", string_of_int stats.transfers);
           ("departures", string_of_int stats.departures);
           ("time-avg N", Report.fmt_float stats.time_avg_n);
           ("max N", string_of_int stats.max_n);
           ("final N", string_of_int stats.final_n);
           ("visits to empty", string_of_int stats.visits_to_empty);
         ]
        @ fault_rows (stats.outage_time, stats.aborted_peers, stats.lost_transfers));
      let r = Classify.of_samples stats.samples in
      Printf.printf "empirical verdict: %s (growth %s/t)\n"
        (Classify.verdict_to_string r.verdict)
        (Report.fmt_float r.growth_rate);
      report_effective_verdict params faults;
      write_csv stats.samples
    end
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the exact stochastic simulation")
    Term.(const run $ params_term $ horizon_arg $ seed_arg $ agent_arg $ policy_arg $ csv_arg
          $ reps_arg ~default:1 $ jobs_arg $ shards_arg $ sync_every_arg $ faults_term
          $ on_error_arg $ rep_timeout_arg $ max_events_arg $ telemetry_term)

(* ---- fluid ---- *)

let fluid_cmd =
  let init_arg =
    Arg.(value & opt_all arrival_conv []
         & info [ "init" ] ~docv:"SPEC"
             ~doc:"Initial swarm density as PIECES=MASS (same shape as --arrive), repeatable; \
                   e.g. --init none=1e6 starts a million empty-handed peers. Default: empty \
                   swarm. Masses need not be integers in fluid mode; the hybrid rounds them.")
  in
  let rtol_arg =
    Arg.(value & opt float 1e-6 & info [ "rtol" ] ~docv:"TOL"
         ~doc:"Relative tolerance of the adaptive stepper.")
  in
  let atol_arg =
    Arg.(value & opt float 1e-9 & info [ "atol" ] ~docv:"TOL"
         ~doc:"Absolute tolerance floor of the adaptive stepper.")
  in
  let hybrid_arg =
    Arg.(value & flag
         & info [ "hybrid" ]
             ~doc:"Hybrid mode: exact stochastic simulation below --switch-up peers, fluid ODE \
                   above it, handing back at --switch-down. Deterministic switch points; same \
                   seed gives bit-identical runs.")
  in
  let switch_up_arg =
    Arg.(value & opt int 1000 & info [ "switch-up" ] ~docv:"N"
         ~doc:"Hybrid: population at which the stochastic segment hands off to the fluid ODE.")
  in
  let switch_down_arg =
    Arg.(value & opt int 100 & info [ "switch-down" ] ~docv:"N"
         ~doc:"Hybrid: fluid total at which the run hands back to the stochastic simulator.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
         ~doc:"Write the sampled (t, N_t) trajectory as CSV.")
  in
  let run params horizon seed init rtol atol hybrid switch_up switch_down csv faults
      max_events tel =
    let control =
      try Ode.control ~rtol ~atol ()
      with Invalid_argument m -> usage_error "%s" m
    in
    let write_csv samples =
      match csv with
      | None -> ()
      | Some file -> write_samples_csv file samples
    in
    let empirical samples =
      let r = Classify.of_samples samples in
      Printf.printf "empirical verdict: %s (growth %s/t)\n"
        (Classify.verdict_to_string r.Classify.verdict)
        (Report.fmt_float r.Classify.growth_rate)
    in
    let fluid_fault_rows (outage_time, aborted_mass, lost_mass) =
      if Faults.is_none faults then []
      else
        [
          ("seed outage time", Report.fmt_float outage_time);
          ("aborted mass", Report.fmt_float aborted_mass);
          ("lost upload mass", Report.fmt_float lost_mass);
        ]
    in
    if hybrid then begin
      if switch_up <= switch_down || switch_down < 0 then
        usage_error "--switch-up (%d) must exceed --switch-down (%d >= 0)" switch_up switch_down;
      let initial =
        List.map
          (fun (set, mass) ->
            let c = int_of_float (Float.round mass) in
            if c < 0 then usage_error "--init mass %g is negative" mass;
            (set, c))
          init
      in
      let markov = { (Sim_markov.default_config params) with initial; faults } in
      let config = { (Sim_hybrid.default_config ~up:switch_up ~down:switch_down markov)
                     with control } in
      let stats, _ =
        with_single_run_probe tel ~k:params.k ~horizon (fun probe ->
            Sim_hybrid.run_seeded ~probe ?max_events ~seed config ~horizon)
      in
      truncation_warning stats.truncated;
      Report.kv
        ([
           ("events", string_of_int stats.events);
           ("stochastic events", string_of_int stats.markov_events);
           ("fluid steps", string_of_int stats.fluid_steps);
           ("handoffs", string_of_int (List.length stats.switches));
           ("arrivals", Report.fmt_float stats.arrivals);
           ("transfers", Report.fmt_float stats.transfers);
           ("departures", Report.fmt_float stats.departures);
           ("time-avg N", Report.fmt_float stats.time_avg_n);
           ("max N", string_of_int stats.max_n);
           ("final N", Report.fmt_float stats.final_n);
           ("visits to empty", string_of_int stats.visits_to_empty);
         ]
        @ fluid_fault_rows (stats.outage_time, stats.aborted, stats.lost));
      if stats.switches <> [] then begin
        Report.subsection "regime handoffs";
        List.iter
          (fun s ->
            Printf.printf "  t=%-12s %s at N=%s\n"
              (Report.fmt_float s.Sim_hybrid.at)
              (if s.Sim_hybrid.to_fluid then "stochastic -> fluid" else "fluid -> stochastic")
              (Report.fmt_float s.Sim_hybrid.n))
          stats.switches
      end;
      empirical stats.samples;
      report_effective_verdict params faults;
      write_csv stats.samples
    end
    else begin
      let config = { (Sim_fluid.default_config params) with initial = init; faults; control } in
      let stats, _ =
        with_single_run_probe tel ~k:params.k ~horizon (fun probe ->
            Sim_fluid.run_seeded ~probe ~seed config ~horizon)
      in
      truncation_warning stats.truncated;
      Report.kv
        ([
           ("accepted steps", string_of_int stats.steps);
           ("rejected steps", string_of_int stats.rejected_steps);
           ("rhs evaluations", string_of_int stats.rhs_evals);
           ("arrival mass", Report.fmt_float stats.arrivals);
           ("transfer mass", Report.fmt_float stats.transfers);
           ("departure mass", Report.fmt_float stats.departures);
           ("time-avg N", Report.fmt_float stats.time_avg_n);
           ("max N", string_of_int stats.max_n);
           ("final N", Report.fmt_float stats.final_n);
         ]
        @ fluid_fault_rows (stats.outage_time, stats.aborted_mass, stats.lost_mass));
      empirical stats.samples;
      report_effective_verdict params faults;
      write_csv stats.samples
    end
  in
  Cmd.v
    (Cmd.info "fluid"
       ~doc:"Integrate the mean-field (fluid) limit, optionally hybridised with the exact \
             stochastic simulator — the million-peer backend")
    Term.(const run $ params_term $ horizon_arg $ seed_arg $ init_arg $ rtol_arg $ atol_arg
          $ hybrid_arg $ switch_up_arg $ switch_down_arg $ csv_arg $ faults_term
          $ max_events_arg $ telemetry_term)

(* ---- region ---- *)

let region_cmd =
  let steps_arg =
    Arg.(value & opt int 9 & info [ "steps" ] ~docv:"N" ~doc:"Grid resolution per axis.")
  in
  let lmax_arg =
    Arg.(value & opt float 3.0 & info [ "lambda-max" ] ~docv:"RATE" ~doc:"Largest lambda.")
  in
  let umax_arg =
    Arg.(value & opt float 3.0 & info [ "us-max" ] ~docv:"RATE" ~doc:"Largest U_s.")
  in
  let run k mu gamma steps lmax umax seed reps jobs horizon on_error want_progress =
    let cell_params i j =
      let lambda = float_of_int (i + 1) /. float_of_int steps *. lmax in
      let us = float_of_int (j + 1) /. float_of_int steps *. umax in
      Params.make ~k ~us ~mu ~gamma ~arrivals:[ (Pieceset.empty, lambda) ]
    in
    let theory_symbol p =
      match Stability.classify p with
      | Stability.Positive_recurrent -> "+"
      | Stability.Transient -> "-"
      | Stability.Borderline -> "0"
    in
    (* With --reps > 0, every cell is simulated reps times; the whole
       (cell x replication) grid is one flat runner sweep.  A replication
       skipped by --on-error (or cut off by Ctrl-C) leaves a None slot and
       simply doesn't vote for its cell. *)
    let sim_symbols =
      if reps <= 0 then None
      else begin
        let cells = steps * steps in
        let progress =
          if want_progress then Progress.create ~total:(cells * reps) () else Progress.silent
        in
        let verdicts, timing =
          Runner.run_map ~jobs:(resolve_jobs jobs) ~on_error ~handle_sigint:true ~progress
            ~master_seed:seed ~replications:(cells * reps) (fun ~rng ~index ->
              let cell = index / reps in
              let p = cell_params (cell / steps) (cell mod steps) in
              let stats, _ = Sim_markov.run ~rng (Sim_markov.default_config p) ~horizon in
              Progress.add_events progress stats.events;
              (Classify.of_samples stats.samples).verdict)
        in
        Format.printf "simulated %d cells x %d reps: %a@." cells reps Runner.pp_timing timing;
        report_failures timing;
        let symbol cell =
          let count v =
            let c = ref 0 in
            for r = 0 to reps - 1 do
              if verdicts.((cell * reps) + r) = Some v then incr c
            done;
            !c
          in
          let stable = count Classify.Appears_stable
          and unstable = count Classify.Appears_unstable in
          if stable > reps / 2 then "+" else if unstable > reps / 2 then "-" else "?"
        in
        Some symbol
      end
    in
    Printf.printf
      "Phase diagram for K=%d mu=%g gamma=%s, empty-handed arrivals.\n\
       Rows: lambda (down = larger). Columns: U_s. '+' stable, '-' transient, '0' borderline.\n\
       %s\n"
      k mu
      (if Float.is_finite gamma then Printf.sprintf "%g" gamma else "inf")
      (match sim_symbols with
      | None -> ""
      | Some _ -> "Cells: theory/simulated majority ('?' = no majority).\n");
    Printf.printf "%8s" "";
    for j = 0 to steps - 1 do
      Printf.printf "%7.2f" (float_of_int (j + 1) /. float_of_int steps *. umax)
    done;
    print_newline ();
    for i = steps - 1 downto 0 do
      let lambda = float_of_int (i + 1) /. float_of_int steps *. lmax in
      Printf.printf "%8.2f" lambda;
      for j = 0 to steps - 1 do
        let t = theory_symbol (cell_params i j) in
        let cell =
          match sim_symbols with
          | None -> t
          | Some symbol -> t ^ "/" ^ symbol ((i * steps) + j)
        in
        Printf.printf "%7s" cell
      done;
      print_newline ()
    done
  in
  Cmd.v (Cmd.info "region" ~doc:"Print the (lambda, U_s) phase diagram")
    Term.(const run $ k_arg $ mu_arg $ gamma_arg $ steps_arg $ lmax_arg $ umax_arg $ seed_arg
          $ reps_arg ~default:0 $ jobs_arg $ horizon_arg $ on_error_arg $ progress_arg)

(* ---- coded ---- *)

let coded_cmd =
  let q_arg = Arg.(value & opt int 16 & info [ "q"; "field" ] ~docv:"Q" ~doc:"Field size (prime power).") in
  let f_arg =
    Arg.(value & opt float 0.25 & info [ "f"; "gift-fraction" ] ~docv:"FRAC" ~doc:"Gifted fraction of arrivals.")
  in
  let sim_arg = Arg.(value & flag & info [ "sim" ] ~doc:"Also simulate the coded swarm.") in
  let replicated config ~horizon ~seed ~reps ~jobs ~faults ~on_error ~rep_timeout ~max_events
      ~progress:want_progress =
    let progress = if want_progress then Progress.create ~total:reps () else Progress.silent in
    let with_faults = not (Faults.is_none faults) in
    let metrics =
      [ "time-avg N"; "final N"; "useful transfers"; "useless transfers"; "completions";
        "growth dN/dt" ]
      @ fault_metric_names faults
    in
    let thunk ~rng ~index:_ =
      let s = Sim_coded.run ?max_events ~rng config ~horizon in
      Progress.add_events progress s.Sim_coded.events;
      let growth = (Classify.of_samples s.samples).growth_rate in
      let values =
        Array.append
          [| s.time_avg_n; float_of_int s.final_n; float_of_int s.useful_transfers;
             float_of_int s.useless_transfers; float_of_int s.completions; growth |]
          (if with_faults then
             [| s.outage_time; float_of_int s.aborted_peers; float_of_int s.lost_transfers |]
           else [||])
      in
      Runner.rep ~flagged:s.truncated ~obs:[| s.time_avg_n |] values
    in
    replication_table ~reps ~seed ~jobs ~on_error ?rep_timeout_s:rep_timeout ~progress ~metrics
      thunk
  in
  let run k q f us mu gamma horizon seed sim reps jobs faults on_error rep_timeout max_events
      tel =
    let g =
      { Stability.Coded.q; k; us; mu; gamma; lambda0 = 1.0 -. f; lambda1 = f }
    in
    Report.kv
      [
        ("transient if f <", Report.fmt_float (Stability.Coded.transient_f_threshold ~q ~k));
        ( "recurrent if f > (exact)",
          Report.fmt_float (Stability.Coded.recurrent_f_threshold_exact ~q ~k) );
        ("verdict at f", Stability.verdict_to_string (Stability.Coded.classify g));
      ];
    if sim || reps > 1 then begin
      let config = { (Sim_coded.of_gift g) with faults } in
      if reps > 1 then begin
        reject_single_run_telemetry tel;
        replicated config ~horizon ~seed ~reps ~jobs ~faults ~on_error ~rep_timeout ~max_events
          ~progress:tel.progress
      end
      else begin
        (* In coded traces and probes the subspace dimension plays the
           role of the piece index, so the probe series has k slots. *)
        let s =
          with_single_run_probe tel ~k ~horizon (fun probe ->
              Sim_coded.run_seeded ~probe ?max_events ~seed config ~horizon)
        in
        truncation_warning s.truncated;
        Report.kv
          ([
             ("time-avg N", Report.fmt_float s.time_avg_n);
             ("final N", string_of_int s.final_n);
             ("useful transfers", string_of_int s.useful_transfers);
             ("useless transfers", string_of_int s.useless_transfers);
             ("completions", string_of_int s.completions);
             ("near-complete fraction", Report.fmt_float s.near_complete_fraction);
             ( "empirical verdict",
               Classify.verdict_to_string (Classify.of_samples s.samples).verdict );
           ]
          @ fault_rows faults (s.outage_time, s.aborted_peers, s.lost_transfers))
      end
    end
  in
  Cmd.v (Cmd.info "coded" ~doc:"Theorem 15: network coding thresholds and simulation")
    Term.(const run $ k_arg $ q_arg $ f_arg $ us_arg $ mu_arg $ gamma_arg $ horizon_arg
          $ seed_arg $ sim_arg $ reps_arg ~default:1 $ jobs_arg $ faults_term $ on_error_arg
          $ rep_timeout_arg $ max_events_arg $ telemetry_term)

(* ---- drift ---- *)

let drift_cmd =
  let sizes_arg =
    Arg.(value & opt (list int) [ 100; 1000; 5000 ] & info [ "sizes" ] ~docv:"N,N,..."
         ~doc:"Population sizes to probe.")
  in
  let run params sizes =
    (match Stability.classify params with
    | Stability.Positive_recurrent -> ()
    | v ->
        Printf.printf "note: parameters are %s; negative drift is not expected.\n"
          (Stability.verdict_to_string v));
    let coeffs = Lyapunov.default_coeffs params in
    Printf.printf "coefficients: r=%g d=%g beta=%g alpha=%g p=%g\n" coeffs.r coeffs.d
      coeffs.beta coeffs.alpha coeffs.p_const;
    Report.table
      ~header:[ "state"; "n"; "QW"; "QW/n" ]
      (List.map
         (fun (pt : Lyapunov.scan_point) ->
           [
             pt.state_desc;
             string_of_int pt.n;
             Report.fmt_float pt.drift_value;
             Report.fmt_float pt.drift_per_peer;
           ])
         (Lyapunov.scan_class_one params coeffs ~sizes))
  in
  Cmd.v (Cmd.info "drift" ~doc:"Exact Lyapunov drift scan (Foster-Lyapunov certificate)")
    Term.(const run $ params_term $ sizes_arg)

(* ---- overlay ---- *)

let overlay_cmd =
  let degree_arg =
    let doc = "Overlay attachment degree; 'inf' = fully connected (the paper's model)." in
    let parse s =
      if s = "inf" then Ok None
      else
        match int_of_string_opt s with
        | Some d when d >= 1 -> Ok (Some d)
        | Some _ | None -> Error (`Msg "degree must be a positive integer or 'inf'")
    in
    let pp fmt = function
      | None -> Format.pp_print_string fmt "inf"
      | Some d -> Format.pp_print_int fmt d
    in
    Arg.(value & opt (conv (parse, pp)) (Some 4) & info [ "degree" ] ~docv:"D" ~doc)
  in
  let choice_arg =
    let choice_conv =
      Arg.enum
        [
          ("random", Sim_network.Random_useful);
          ("rarest-global", Sim_network.Rarest_global);
          ("rarest-local", Sim_network.Rarest_local);
        ]
    in
    Arg.(value & opt choice_conv Sim_network.Random_useful & info [ "choice" ] ~docv:"NAME"
         ~doc:"Piece choice: random|rarest-global|rarest-local.")
  in
  let replicated cfg ~horizon ~seed ~reps ~jobs ~faults ~on_error ~rep_timeout ~max_events
      ~progress:want_progress =
    let progress = if want_progress then Progress.create ~total:reps () else Progress.silent in
    let with_faults = not (Faults.is_none faults) in
    let metrics =
      [ "time-avg N"; "final N"; "transfers"; "silent contacts"; "mean overlay degree";
        "growth dN/dt" ]
      @ fault_metric_names faults
    in
    let thunk ~rng ~index:_ =
      let s, _ = Sim_network.run ?max_events ~rng cfg ~horizon in
      Progress.add_events progress s.Sim_network.events;
      let growth = (Classify.of_samples s.samples).growth_rate in
      let degree =
        if Float.is_nan s.mean_degree_time_avg then 0.0 else s.mean_degree_time_avg
      in
      let values =
        Array.append
          [| s.time_avg_n; float_of_int s.final_n; float_of_int s.transfers;
             float_of_int s.silent_contacts; degree; growth |]
          (if with_faults then
             [| s.outage_time; float_of_int s.aborted_peers; float_of_int s.lost_transfers |]
           else [||])
      in
      Runner.rep ~flagged:s.truncated ~obs:[| s.time_avg_n |] values
    in
    replication_table ~reps ~seed ~jobs ~on_error ?rep_timeout_s:rep_timeout ~progress ~metrics
      thunk
  in
  let run params horizon seed degree choice reps jobs faults on_error rep_timeout max_events
      tel =
    let cfg = { (Sim_network.default_config params) with degree; choice; faults } in
    if reps > 1 then begin
      reject_single_run_telemetry tel;
      replicated cfg ~horizon ~seed ~reps ~jobs ~faults ~on_error ~rep_timeout ~max_events
        ~progress:tel.progress;
      report_effective_verdict params faults
    end
    else begin
      let s, _ =
        with_single_run_probe tel ~k:params.k ~horizon (fun probe ->
            Sim_network.run_seeded ~probe ?max_events ~seed cfg ~horizon)
      in
      truncation_warning s.truncated;
      let r = Classify.of_samples s.samples in
      Report.kv
        ([
           ("verdict", Classify.verdict_to_string r.verdict);
           ("time-avg N", Report.fmt_float s.time_avg_n);
           ("transfers", string_of_int s.transfers);
           ("silent contacts", string_of_int s.silent_contacts);
           ( "mean overlay degree",
             if Float.is_nan s.mean_degree_time_avg then "-"
             else Report.fmt_float s.mean_degree_time_avg );
           ("components at end", string_of_int (List.length s.final_component_sizes));
         ]
        @ fault_rows faults (s.outage_time, s.aborted_peers, s.lost_transfers));
      report_effective_verdict params faults
    end
  in
  Cmd.v
    (Cmd.info "overlay" ~doc:"Simulate the swarm on a sparse random overlay")
    Term.(const run $ params_term $ horizon_arg $ seed_arg $ degree_arg $ choice_arg
          $ reps_arg ~default:1 $ jobs_arg $ faults_term $ on_error_arg $ rep_timeout_arg
          $ max_events_arg $ telemetry_term)

(* ---- hetero ---- *)

let hetero_cmd =
  let class_conv =
    let hint = "expected LABEL=MU,GAMMA,RATE, e.g. 'fast=2,inf,0.5' (GAMMA may be 'inf')" in
    let parse spec =
      let fail fmt = Printf.ksprintf (fun m -> Error (`Msg (m ^ "; " ^ hint))) fmt in
      match String.split_on_char '=' spec with
      | [ label; rest ] -> begin
          match String.split_on_char ',' rest with
          | [ mu; gamma; rate ] ->
              let parse_float name s k =
                if s = "inf" then k infinity
                else
                  match float_of_string_opt s with
                  | Some v -> k v
                  | None -> fail "bad %s %S in class spec %S" name s spec
              in
              parse_float "mu" mu (fun mu ->
                  parse_float "gamma" gamma (fun gamma ->
                      parse_float "rate" rate (fun rate ->
                          Ok
                            {
                              Hetero.label;
                              mu;
                              gamma;
                              arrivals = [ (Pieceset.empty, rate) ];
                            })))
          | _ -> fail "class spec %S is not of the form LABEL=MU,GAMMA,RATE" spec
        end
      | _ -> fail "class spec %S is not of the form LABEL=MU,GAMMA,RATE" spec
    in
    let pp fmt (c : Hetero.klass) =
      let rate = List.fold_left (fun acc (_, r) -> acc +. r) 0.0 c.arrivals in
      Format.fprintf fmt "%s=%g,%g,%g" c.label c.mu c.gamma rate
    in
    Arg.conv (parse, pp)
  in
  let class_arg =
    let doc =
      "A peer class $(docv) as LABEL=MU,GAMMA,RATE (empty-handed arrivals at RATE; GAMMA may \
       be 'inf'); repeatable."
    in
    Arg.(value
         & opt_all class_conv
             [ { Hetero.label = "all"; mu = 1.0; gamma = 2.0; arrivals = [ (Pieceset.empty, 1.0) ] } ]
         & info [ "class"; "c" ] ~docv:"SPEC" ~doc)
  in
  let run k us horizon seed classes =
    let h = Hetero.make ~k ~us ~classes in
    Report.kv
      [
        ("heuristic verdict", Stability.verdict_to_string (Hetero.classify_heuristic h));
        ("m_bar (seed branching)", Report.fmt_float (Hetero.mean_seed_offspring h ~piece:0));
        ("heuristic threshold", Report.fmt_float (Hetero.threshold h ~piece:0));
        ("lambda_total", Report.fmt_float (Hetero.lambda_total h));
      ];
    let s = Hetero.simulate_seeded ~seed h ~horizon in
    let r = Classify.of_samples s.samples in
    Report.kv
      [
        ("simulated verdict", Classify.verdict_to_string r.verdict);
        ("time-avg N", Report.fmt_float s.time_avg_n);
      ];
    Report.subsection "per class";
    Report.table
      ~header:[ "class"; "mean N"; "mean sojourn" ]
      (List.mapi
         (fun i (c : Hetero.klass) ->
           [
             c.label;
             Report.fmt_float s.class_mean_n.(i);
             Report.fmt_float s.class_mean_sojourn.(i);
           ])
         classes)
  in
  Cmd.v
    (Cmd.info "hetero" ~doc:"Heterogeneous peer classes: heuristic region + simulation")
    Term.(const run $ k_arg $ us_arg $ horizon_arg $ seed_arg $ class_arg)

(* ---- exact ---- *)

let exact_cmd =
  let nmax_arg =
    Arg.(value & opt int 60 & info [ "n-max" ] ~docv:"N" ~doc:"Population cap for truncation.")
  in
  let run params nmax =
    let chain = Truncated.build params ~n_max:nmax in
    Printf.printf "enumerated %d states (n <= %d)\n%!" (Truncated.state_count chain) nmax;
    let pi = Truncated.stationary chain in
    Report.kv
      [
        ("exact E[N]", Report.fmt_float (Truncated.mean_population chain pi));
        ("P(empty)", Report.fmt_float (Truncated.probability_empty chain pi));
        ( "P(N >= n_max/2)",
          Report.fmt_float (Truncated.population_tail chain pi ~at_least:(nmax / 2)) );
        ("mass at cap (bias check)", Report.fmt_float (Truncated.truncation_mass_at_cap chain pi));
      ];
    Report.subsection "stationary mean count per type";
    List.iter
      (fun c ->
        let m = Truncated.mean_type_count chain pi c in
        if m > 1e-9 then
          Printf.printf "  %-12s %s\n" (Pieceset.to_string c) (Report.fmt_float m))
      (Pieceset.all ~k:params.k)
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Exact stationary distribution on a truncated state space (small K)")
    Term.(const run $ params_term $ nmax_arg)

(* ---- reachable ---- *)

let reachable_cmd =
  let policy_arg =
    let policy_conv =
      Arg.enum
        [
          ("random", Policy.random_useful);
          ("rarest", Policy.rarest_first);
          ("common", Policy.most_common_first);
          ("sequential", Policy.sequential);
        ]
    in
    Arg.(value & opt policy_conv Policy.sequential & info [ "policy" ] ~docv:"NAME"
         ~doc:"Piece selection: random|rarest|common|sequential.")
  in
  let nmax_arg =
    Arg.(value & opt int 4 & info [ "n-max" ] ~docv:"N" ~doc:"Population cap for the search.")
  in
  let run params policy nmax =
    let r = Reachability.explore ~policy params ~n_max:nmax in
    Report.kv
      [
        ("states explored", string_of_int r.states_explored);
        ("truncated", Report.fmt_bool r.truncated);
        ("peer types reachable", string_of_int (List.length r.types_seen));
        ( "prefix collections only (paper's sequential-policy claim)",
          Report.fmt_bool (Reachability.prefix_types_only ~k:params.k r.types_seen) );
        ( "all 2^K types reachable",
          Report.fmt_bool (Reachability.all_types_reachable ~k:params.k r.types_seen) );
      ];
    Printf.printf "types: %s\n"
      (String.concat " " (List.map Pieceset.to_string r.types_seen))
  in
  Cmd.v
    (Cmd.info "reachable"
       ~doc:"Explore the minimal closed set of states under a piece-selection policy")
    Term.(const run $ params_term $ policy_arg $ nmax_arg)

(* ---- borderline ---- *)

let borderline_cmd =
  let start_arg =
    Arg.(value & opt int 10 & info [ "start" ] ~docv:"N" ~doc:"Starting one-club size.")
  in
  let count_arg =
    Arg.(value & opt int 200 & info [ "count" ] ~docv:"N" ~doc:"Number of excursions.")
  in
  let cap_arg =
    Arg.(value & opt int 1_000_000 & info [ "cap" ] ~docv:"STEPS" ~doc:"Per-excursion step cap.")
  in
  let run k seed start count cap =
    let rng = P2p_prng.Rng.of_seed seed in
    let config = { Mu_infinity.k; lambda = 1.0 } in
    Printf.printf "mu = infinity watched process, K=%d (E[Z] = %g: zero drift on the top layer)\n"
      k (Mu_infinity.z_expectation ~k);
    let excursions = Mu_infinity.excursions rng config ~start_n:start ~count ~cap_steps:cap in
    let finished = List.filter (fun (e : Mu_infinity.excursion) -> not e.capped) excursions in
    let lengths = List.map (fun (e : Mu_infinity.excursion) -> float_of_int e.length) finished in
    let mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (Int.max 1 (List.length l)) in
    Report.kv
      [
        ("excursions finished", Printf.sprintf "%d / %d" (List.length finished) count);
        ("mean excursion length (finished)", Report.fmt_float (mean lengths));
        ( "max peak",
          string_of_int
            (List.fold_left (fun acc (e : Mu_infinity.excursion) -> Int.max acc e.peak) 0
               excursions) );
      ]
  in
  Cmd.v (Cmd.info "borderline" ~doc:"The mu=infinity borderline process (Section VIII-D)")
    Term.(const run $ k_arg $ seed_arg $ start_arg $ count_arg $ cap_arg)

(* ---- campaign ---- *)

let campaign_cmd =
  let dir_arg =
    Arg.(required & opt (some string) None
         & info [ "dir"; "d" ] ~docv:"DIR" ~doc:"Campaign directory (the crash-safe store).")
  in
  let cell_timeout_arg =
    Arg.(value & opt (some (timeout_conv "cell timeout")) None
         & info [ "cell-timeout" ] ~docv:"SECS"
             ~doc:"Wall-clock watchdog per replication of a cell; an overrunning cell is a \
                   failure handled by --on-error (retried attempts use fresh deterministic \
                   streams and fresh watchdogs).")
  in
  let backoff_arg =
    Arg.(value & opt float 1.0
         & info [ "retry-backoff" ] ~docv:"SECS"
             ~doc:"Base exponential backoff before retry attempt A of a failing cell: \
                   $(docv) x 2^(A-1) seconds. 0 = retry immediately.")
  in
  let checkpoint_every_arg =
    Arg.(value & opt int 25
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"Seal the active store segment and write a checkpoint every $(docv) cells.")
  in
  let registry_arg =
    Arg.(value & opt (some string) None
         & info [ "registry" ] ~docv:"FILE"
             ~doc:"Experiment-log JSONL: append an entry (name, hypothesis, spec hash, exact \
                   command, cell counts, verdict) when the campaign ends, however it ends.")
  in
  let crash_after_arg =
    Arg.(value & opt (some int) None
         & info [ "crash-after" ] ~docv:"N"
             ~doc:"Testing hook: exit(99) immediately after persisting the $(docv)-th new cell \
                   record of this process — simulates a kill at a cell boundary.")
  in
  let campaign_flight_arg =
    Arg.(value & opt (some string) None
         & info [ "flight-recorder" ] ~docv:"DIR"
             ~doc:"Keep a per-replication flight recorder and snapshot it atomically to \
                   $(docv)/cell-<index>-d<domain>.jsonl while each cell runs: a cell that \
                   crashes, outruns --cell-timeout, or is SIGKILLed leaves a complete, \
                   parseable dump of its last few thousand engine events behind (render with \
                   'p2psim report').")
  in
  let opts_term =
    let make jobs on_error cell_timeout backoff every progress registry crash_after flight =
      if not (Float.is_finite backoff) || backoff < 0.0 then
        usage_error "--retry-backoff must be a finite non-negative number of seconds";
      if every < 1 then usage_error "--checkpoint-every must be at least 1";
      {
        Campaign.default_options with
        jobs = (if jobs <= 0 then None else Some jobs);
        on_error;
        cell_timeout_s = cell_timeout;
        retry_backoff_s = backoff;
        checkpoint_every = every;
        progress;
        registry;
        command = String.concat " " (Array.to_list Sys.argv);
        crash_after_cells = crash_after;
        handle_signals = true;
        flight_recorder = flight;
      }
    in
    Term.(const make $ jobs_arg $ on_error_arg $ cell_timeout_arg $ backoff_arg
          $ checkpoint_every_arg $ progress_arg $ registry_arg $ crash_after_arg
          $ campaign_flight_arg)
  in
  let finish dir = function
    | Error msg ->
        prerr_endline ("p2psim campaign: " ^ msg);
        exit 1
    | Ok (o : Campaign.outcome) ->
        Report.kv
          [
            ("cells done", string_of_int o.cells_done);
            ("run by this process", string_of_int o.cells_run);
            ("failed cells", string_of_int o.failed);
            ( "status",
              if o.complete then "complete"
              else if o.interrupted then "interrupted"
              else "partial" );
          ];
        if o.complete then Printf.printf "results: %s\n" (Store.results_path ~dir)
        else begin
          Printf.printf "resume with: p2psim campaign resume --dir %s\n" dir;
          exit 3
        end
  in
  let run_cmd =
    let spec_arg =
      Arg.(required & pos 0 (some file) None
           & info [] ~docv:"SPEC.json" ~doc:"Campaign spec file.")
    in
    let run spec_file dir opts =
      match Campaign_spec.of_file spec_file with
      | Error msg -> usage_error "%s: %s" spec_file msg
      | Ok spec ->
          Printf.printf "campaign %S (spec hash %s)\n" spec.Campaign_spec.name
            (Campaign_spec.hash spec);
          finish dir (Campaign.run ~dir opts spec)
    in
    Cmd.v
      (Cmd.info "run" ~doc:"Start a campaign from a spec file")
      Term.(const run $ spec_arg $ dir_arg $ opts_term)
  in
  let resume_cmd =
    let run dir opts = finish dir (Campaign.resume ~dir opts) in
    Cmd.v
      (Cmd.info "resume"
         ~doc:"Continue a campaign from its store, quarantining any torn trailing record")
      Term.(const run $ dir_arg $ opts_term)
  in
  let status_cmd =
    let run dir =
      match Campaign.status ~dir with
      | Error msg -> usage_error "%s" msg
      | Ok json -> print_endline (Json.to_string json)
    in
    Cmd.v
      (Cmd.info "status" ~doc:"Summarise a campaign directory without modifying it")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "campaign"
       ~doc:"Checkpointed parameter sweeps: crash-safe store, retry/backoff, resume")
    [ run_cmd; resume_cmd; status_cmd ]

(* ---- report ---- *)

let report_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"Observability file, dispatched on its schema header: a probe series \
                   (--metrics-out), a histogram file (--hist-out), a JSONL flight recorder dump \
                   (--flight-recorder; the .json Chrome form is for chrome://tracing, not this \
                   command), or a detector timeline (--alerts-out).")
  in
  let render_monitor_replay (samples : Probe.sample array) =
    Report.subsection "online detector replay (missing piece syndrome)";
    if Array.length samples = 0 then print_endline "no samples to replay"
    else begin
      let m = Monitor.create () in
      Array.iter
        (fun (s : Probe.sample) ->
          Monitor.observe m ~time:s.Probe.time ~one_club:s.Probe.one_club
            ~rarest_piece:s.Probe.rarest_piece ~rarest_count:s.Probe.rarest_count)
        samples;
      match Monitor.alerts m with
      | [] -> print_endline "detector quiet over the whole series"
      | alerts ->
          List.iter (fun a -> Format.printf "  %a@." Monitor.pp_alert a) alerts;
          Report.table
            ~header:[ "episode entered"; "exited" ]
            (List.map
               (fun (entered, exited) ->
                 [
                   Report.fmt_float entered;
                   (match exited with
                   | Some x -> Report.fmt_float x
                   | None -> "open at end of series");
                 ])
               (Monitor.episodes m))
    end
  in
  let render_hists file =
    match Hist.read_group_file file with
    | Error msg -> usage_error "cannot read %s: %s" file msg
    | Ok hists ->
        Printf.printf "%d histograms\n" (List.length hists);
        List.iter (fun nh -> Format.printf "%a@." Hist.pp_named nh) hists
  in
  let render_flight file =
    match Recorder.read_summary file with
    | Error msg -> usage_error "cannot read %s: %s" file msg
    | Ok ((capacity, recorded, dropped), events) ->
        Report.kv
          [
            ("ring capacity", string_of_int capacity);
            ("events recorded", string_of_int recorded);
            ("events overwritten", string_of_int dropped);
            ("events in dump", string_of_int (Array.length events));
          ];
        if Array.length events > 0 then begin
          let t0, _, _, _ = events.(0) in
          let t1, _, _, _ = events.(Array.length events - 1) in
          Report.kv [ ("sim-time span", Printf.sprintf "[%g, %g]" t0 t1) ];
          let counts = Hashtbl.create 16 in
          Array.iter
            (fun (_, code, _, _) ->
              Hashtbl.replace counts code (1 + Option.value ~default:0 (Hashtbl.find_opt counts code)))
            events;
          Report.subsection "event mix in the dump window";
          Report.table ~header:[ "event"; "count" ]
            (List.map
               (fun (code, n) -> [ Probe.code_name code; string_of_int n ])
               (List.sort compare (Hashtbl.fold (fun c n acc -> (c, n) :: acc) counts [])))
        end
  in
  let render_monitor_file file json =
    let ints path = Option.bind (Json.member path json) Json.to_int_opt in
    let lists path = Option.value ~default:[] (Option.bind (Json.member path json) Json.to_list_opt) in
    let alerts = lists "alerts" and episodes = lists "episodes" in
    Report.kv
      [
        ("samples", string_of_int (Option.value ~default:0 (ints "samples")));
        ("alerts", string_of_int (List.length alerts));
        ("episodes", string_of_int (List.length episodes));
      ];
    List.iter
      (fun a ->
        let f k = Option.bind (Json.member k a) Json.to_float_opt in
        let i k = Option.bind (Json.member k a) Json.to_int_opt in
        match (f "t", i "one_club", i "rarest_piece", i "rarest_count", f "slope", f "t_stat") with
        | Some t, Some club, Some piece, Some copies, Some slope, Some t_stat ->
            Printf.printf
              "  missing_piece_syndrome at t=%g: piece %d down to %d copies, one-club %d drifting %+g/t (t-stat %.2f)\n"
              t piece copies club slope t_stat
        | _ -> usage_error "malformed alert record in %s" file)
      alerts
  in
  let run file =
    let schema_of j = Option.bind (Json.member "schema" j) Json.to_string_opt in
    let first_record =
      match Json.read_jsonl_file file with
      | Error msg -> usage_error "cannot read %s: %s" file msg
      | Ok { Json.records = []; _ } -> usage_error "%s: no complete records" file
      | Ok { Json.records = r :: _; _ } -> r
    in
    match schema_of first_record with
    | Some "p2p-hist" -> render_hists file
    | Some s when s = Recorder.schema -> render_flight file
    | Some "p2p-monitor" -> render_monitor_file file first_record
    | Some "p2p-swarm-probe" -> begin
        match Series.read_file file with
        | Error msg -> usage_error "cannot read %s: %s" file msg
        | Ok s ->
        let k = Series.k s in
        let nsamples = Series.count s in
        Report.kv
          [
            ("samples", string_of_int nsamples);
            ("pieces (K)", string_of_int k);
            ("time-avg population N", Report.fmt_float (Series.avg_n s));
            ("time-avg peer seeds", Report.fmt_float (Series.avg_seeds s));
            ("time-avg one-club size", Report.fmt_float (Series.avg_one_club s));
            ("time-avg rarest-piece copies", Report.fmt_float (Series.avg_rarest_count s));
          ];
        Report.subsection "per-piece scarcity (time-averaged copies in the swarm)";
        let piece_avgs = Array.init k (fun i -> Series.avg_piece s i) in
        let rarest = ref 0 in
        Array.iteri (fun i v -> if v < piece_avgs.(!rarest) then rarest := i) piece_avgs;
        let avg_n = Series.avg_n s in
        Report.table
          ~header:[ "piece"; "avg copies"; "copies per peer"; "" ]
          (List.init k (fun i ->
               [
                 string_of_int (i + 1);
                 Report.fmt_float piece_avgs.(i);
                 (if avg_n > 0.0 then Report.fmt_float (piece_avgs.(i) /. avg_n) else "-");
                 (if i = !rarest then "<- rarest" else "");
               ]));
        Report.subsection "one-club growth (the missing piece syndrome witness)";
        let club = Series.one_club_series s in
        if Array.length club < 16 then
          Printf.printf "only %d samples; need at least 16 for a growth fit\n"
            (Array.length club)
        else begin
          let r = Classify.of_samples club in
          Report.kv
            [
              ("one-club growth rate", Report.fmt_float r.growth_rate ^ " peers/t");
              ("growth t-statistic", Report.fmt_float r.growth_t_stat);
              ("final one-club size", string_of_int r.final_n);
              ("one-club verdict", Classify.verdict_to_string r.verdict);
            ];
          if r.verdict = Classify.Appears_unstable then
            print_endline
              "one-club grows linearly: the missing piece syndrome transient signature \
               (Theorem 1, growth rate ~ Delta)"
        end;
        render_monitor_replay (Series.samples s)
      end
    | Some other -> usage_error "%s: unknown schema %S" file other
    | None ->
        usage_error
          "%s: no schema header (Chrome-trace .json dumps are for chrome://tracing, not report)"
          file
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render an observability file: probe series (scarcity, one-club growth, detector \
             replay), histograms, flight recorder dumps, or detector timelines")
    Term.(const run $ file_arg)

let () =
  let info = Cmd.info "p2psim" ~version:"1.0.0" ~doc:"P2P swarm stability toolkit (Zhu & Hajek)" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd; simulate_cmd; fluid_cmd; region_cmd; overlay_cmd; hetero_cmd; coded_cmd; drift_cmd;
            exact_cmd; reachable_cmd; borderline_cmd; report_cmd; campaign_cmd;
          ]))
